"""Cross-run differential analysis: *why* is run B slower than run A?

The simulator is deterministic in virtual time, so two runs of the same
workload under different policies align kernel-by-kernel: launch *i* in run
A is the same logical kernel as launch *i* in run B. That alignment turns
"CA:LMP is 18% slower than CA:LM" into an exact decomposition:

    total = lead + sum(kernel spans) + sum(inter-kernel gaps)

Every virtual second of the end-to-end delta lands in one aligned segment,
so the per-segment deltas sum to the total delta — attribution is
structural, not sampled. Within a segment, the delta splits into compute
(the kernel's own ``seconds``), movement (copies executed inside the span,
grouped by root cause), and stall (async waits); and the root-cause labels
name the objects responsible, which the :mod:`~repro.telemetry.ledger`
cross-references for ping-pong signatures.

Two entry points, both consumed by ``python -m repro``:

* :func:`explain_run` — single-trace report: where the time went, which
  objects moved/stalled most, who ping-pongs (``repro explain``);
* :func:`diff_runs` — two-trace attribution of the end-to-end delta
  (``repro diff``).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.telemetry.ledger import ObjectLedger, build_ledger, label_subject
from repro.telemetry.trace import (
    COPY_START,
    KERNEL_END,
    KERNEL_START,
    STALL,
    TraceEvent,
)

__all__ = [
    "KernelSpan",
    "RunShape",
    "SegmentDelta",
    "RunDiff",
    "RunExplanation",
    "parse_run",
    "diff_runs",
    "explain_run",
    "streams_in",
    "stall_attribution",
]


def streams_in(events: Iterable[TraceEvent]) -> list[str]:
    """The named execution streams present in a trace, in sorted order.

    Single-tenant traces (every event's ``stream`` empty) return ``[]``.
    """
    return sorted({e.stream for e in events if e.stream})


def stall_attribution(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """How much STALL time is blamed on specific (stream, object) pairs.

    Stall events carry ``objects`` (the operands still in flight) and
    ``charged`` (that stall's seconds split proportionally among them).
    The attributed fraction is the co-location acceptance gate: it should
    sit near 1.0 because every async wait knows exactly which copies it is
    waiting on; it drops only for stall events emitted without payload
    attribution (e.g. by an out-of-tree adapter).
    """
    total = 0.0
    pairs: dict[tuple[str, str], float] = {}
    for event in events:
        if event.kind != STALL:
            continue
        total += float(event.args.get("seconds", 0.0))
        objects = event.args.get("objects") or ()
        charged = event.args.get("charged") or ()
        for name, seconds in zip(objects, charged):
            key = (event.stream, str(name))
            pairs[key] = pairs.get(key, 0.0) + float(seconds)
    attributed = sum(pairs.values())
    return {
        "total_stall_seconds": total,
        "attributed_seconds": attributed,
        "attributed_fraction": attributed / total if total > 0 else 1.0,
        "pairs": [
            {"stream": stream, "object": name, "seconds": seconds}
            for (stream, name), seconds in sorted(
                pairs.items(), key=lambda item: (-item[1], item[0])
            )
        ],
    }


class KernelSpan:
    """One kernel launch: wall span plus its compute/movement/stall split."""

    __slots__ = (
        "index", "name", "start", "end", "compute",
        "stall", "copy_seconds", "copy_bytes", "causes",
    )

    def __init__(self, index: int, name: str, start: float) -> None:
        self.index = index
        self.name = name
        self.start = start
        self.end = start
        self.compute = 0.0        # the kernel's own timing (seconds arg)
        self.stall = 0.0          # async waits inside the span
        self.copy_seconds = 0.0   # copies started inside the span
        self.copy_bytes = 0
        # root cause label -> [seconds, nbytes] for copies in this span
        self.causes: dict[str, list[float]] = {}

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def movement(self) -> float:
        """Span time not explained by the kernel's own compute/memory model."""
        return self.span - self.compute


class RunShape:
    """A trace parsed into lead time, kernel spans, and inter-kernel gaps."""

    def __init__(
        self,
        kernels: list[KernelSpan],
        gap_causes: dict[int, dict[str, list[float]]],
        start_ts: float,
        end_ts: float,
    ) -> None:
        self.kernels = kernels
        # Copies outside any kernel span, keyed by the index of the *next*
        # kernel (len(kernels) = after the last one). Inter-kernel time
        # itself is implied by consecutive span boundaries.
        self.gap_causes = gap_causes
        self.start_ts = start_ts
        self.end_ts = end_ts

    @property
    def total(self) -> float:
        return self.end_ts - self.start_ts

    def gap_before(self, index: int) -> float:
        """Virtual time between kernel ``index-1``'s end and ``index``'s start."""
        if index == 0:
            return self.kernels[0].start - self.start_ts if self.kernels else 0.0
        if index >= len(self.kernels):
            return self.end_ts - self.kernels[-1].end if self.kernels else self.total
        return self.kernels[index].start - self.kernels[index - 1].end


def parse_run(
    events: Iterable[TraceEvent], *, stream: str | None = None
) -> RunShape:
    """Fold an event stream into a :class:`RunShape` (single pass).

    ``stream`` restricts the fold to one tenant's events: multi-stream
    traces interleave several kernel sequences, so folding them unfiltered
    would mispair kernel starts and ends across tenants. ``None`` (the
    default) keeps every event — correct for single-stream traces.
    """
    kernels: list[KernelSpan] = []
    gap_causes: dict[int, dict[str, list[float]]] = {}
    current: KernelSpan | None = None
    first_ts: float | None = None
    last_ts = 0.0
    for event in events:
        if stream is not None and event.stream != stream:
            continue
        if first_ts is None:
            first_ts = event.ts
        if event.ts > last_ts:
            last_ts = event.ts
        kind = event.kind
        if kind == KERNEL_START:
            current = KernelSpan(
                len(kernels), str(event.args.get("kernel", "?")), event.ts
            )
            kernels.append(current)
        elif kind == KERNEL_END:
            if current is not None:
                current.end = event.ts
                current.compute = float(event.args.get("seconds", 0.0))
                current = None
        elif kind == COPY_START:
            seconds = float(event.args.get("seconds", 0.0))
            nbytes = int(event.args.get("nbytes", 0))
            root = event.root or "unattributed"
            if current is not None:
                current.copy_seconds += seconds
                current.copy_bytes += nbytes
                bucket = current.causes.setdefault(root, [0.0, 0.0])
            else:
                causes = gap_causes.setdefault(len(kernels), {})
                bucket = causes.setdefault(root, [0.0, 0.0])
            bucket[0] += seconds
            bucket[1] += nbytes
        elif kind == STALL and current is not None:
            current.stall += float(event.args.get("seconds", 0.0))
    return RunShape(
        kernels, gap_causes, first_ts if first_ts is not None else 0.0, last_ts
    )


def _cause_deltas(
    causes_a: dict[str, list[float]], causes_b: dict[str, list[float]]
) -> list[dict[str, Any]]:
    """Per-root-cause copy-time deltas between two aligned segments."""
    out: list[dict[str, Any]] = []
    for root in sorted(set(causes_a) | set(causes_b)):
        sec_a, bytes_a = causes_a.get(root, (0.0, 0.0))
        sec_b, bytes_b = causes_b.get(root, (0.0, 0.0))
        if sec_a == sec_b and bytes_a == bytes_b:
            continue
        out.append(
            {
                "root": root,
                "object": label_subject(root),
                "seconds_a": sec_a,
                "seconds_b": sec_b,
                "delta": sec_b - sec_a,
                "nbytes_a": int(bytes_a),
                "nbytes_b": int(bytes_b),
            }
        )
    out.sort(key=lambda c: (-abs(c["delta"]), c["root"]))
    return out


class SegmentDelta:
    """One aligned segment's contribution to the end-to-end delta."""

    __slots__ = (
        "kind", "index", "name", "dur_a", "dur_b",
        "compute_delta", "movement_delta", "stall_delta", "causes",
    )

    def __init__(
        self,
        kind: str,
        index: int,
        name: str,
        dur_a: float,
        dur_b: float,
        compute_delta: float = 0.0,
        movement_delta: float = 0.0,
        stall_delta: float = 0.0,
        causes: list[dict[str, Any]] | None = None,
    ) -> None:
        self.kind = kind          # "kernel" | "gap" | "lead" | "unaligned"
        self.index = index
        self.name = name
        self.dur_a = dur_a
        self.dur_b = dur_b
        self.compute_delta = compute_delta
        self.movement_delta = movement_delta
        self.stall_delta = stall_delta
        self.causes = causes if causes is not None else []

    @property
    def delta(self) -> float:
        return self.dur_b - self.dur_a

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "index": self.index,
            "name": self.name,
            "dur_a": self.dur_a,
            "dur_b": self.dur_b,
            "delta": self.delta,
            "compute_delta": self.compute_delta,
            "movement_delta": self.movement_delta,
            "stall_delta": self.stall_delta,
            "causes": self.causes,
        }


class RunDiff:
    """The attribution of ``total_b - total_a`` across aligned segments."""

    def __init__(
        self,
        label_a: str,
        label_b: str,
        shape_a: RunShape,
        shape_b: RunShape,
        segments: list[SegmentDelta],
        ledger_b: ObjectLedger,
        *,
        ping_pong_window: int = 8,
    ) -> None:
        self.label_a = label_a
        self.label_b = label_b
        self.total_a = shape_a.total
        self.total_b = shape_b.total
        self.kernels_a = len(shape_a.kernels)
        self.kernels_b = len(shape_b.kernels)
        self.segments = segments
        self.ping_pong_window = ping_pong_window
        self.ping_pongs = ledger_b.ping_pongs(window=ping_pong_window)

    @property
    def delta(self) -> float:
        return self.total_b - self.total_a

    @property
    def attributed_delta(self) -> float:
        """Delta landing in *named* segments (kernels and inter-kernel gaps)."""
        return sum(s.delta for s in self.segments if s.kind != "unaligned")

    @property
    def attributed_fraction(self) -> float:
        """Fraction of |delta| explained by aligned, named segments.

        The decomposition is exact when both runs launch the same kernel
        sequence (the deterministic-workload guarantee), so this sits at
        ~1.0; it only drops when the runs genuinely diverge structurally.
        """
        if self.delta == 0.0:
            return 1.0
        return min(1.0, abs(self.attributed_delta) / abs(self.delta))

    def top_segments(self, n: int = 10) -> list[SegmentDelta]:
        ranked = sorted(self.segments, key=lambda s: (-abs(s.delta), s.index))
        return [s for s in ranked[:n] if s.delta != 0.0]

    def culprit_objects(self, n: int = 10) -> list[dict[str, Any]]:
        """Objects ranked by the copy-time delta attributed to them."""
        per_object: dict[str, float] = {}
        for segment in self.segments:
            for cause in segment.causes:
                name = cause["object"] or cause["root"]
                per_object[name] = per_object.get(name, 0.0) + cause["delta"]
        ping_pong_names = {p.name for p in self.ping_pongs}
        ranked = sorted(
            per_object.items(), key=lambda item: (-abs(item[1]), item[0])
        )
        return [
            {
                "object": name,
                "copy_seconds_delta": delta,
                "ping_pong": name in ping_pong_names,
            }
            for name, delta in ranked[:n]
            if delta != 0.0
        ]

    def to_json(self) -> dict[str, Any]:
        return {
            "run_a": self.label_a,
            "run_b": self.label_b,
            "total_a": self.total_a,
            "total_b": self.total_b,
            "delta": self.delta,
            "kernels_a": self.kernels_a,
            "kernels_b": self.kernels_b,
            "attributed_delta": self.attributed_delta,
            "attributed_fraction": self.attributed_fraction,
            "segments": [s.to_json() for s in self.segments],
            "culprit_objects": self.culprit_objects(),
            "ping_pong_window": self.ping_pong_window,
            "ping_pongs": [p.to_json() for p in self.ping_pongs],
        }

    def render(self, *, top: int = 10) -> str:
        lines: list[str] = []
        sign = "+" if self.delta >= 0 else ""
        lines.append(
            f"run diff: {self.label_b} vs {self.label_a} "
            f"({self.total_b:.4f}s vs {self.total_a:.4f}s, "
            f"{sign}{self.delta:.4f}s)"
        )
        lines.append(
            f"  kernels: {self.kernels_b} vs {self.kernels_a}; "
            f"attributed {self.attributed_fraction:.1%} of the delta "
            f"to aligned segments"
        )
        lines.append("")
        lines.append("  hottest segments (delta = B - A):")
        for segment in self.top_segments(top):
            lines.append(
                f"    {segment.kind:<7} #{segment.index:<4} "
                f"{segment.name:<16} {segment.delta:+.4f}s "
                f"(compute {segment.compute_delta:+.4f}s, "
                f"movement {segment.movement_delta:+.4f}s, "
                f"stall {segment.stall_delta:+.4f}s)"
            )
            for cause in segment.causes[:3]:
                lines.append(
                    f"        {cause['delta']:+.4f}s  {cause['root']}"
                )
        culprits = self.culprit_objects(top)
        if culprits:
            lines.append("")
            lines.append("  objects behind the movement delta:")
            for culprit in culprits:
                marker = "  [ping-pong]" if culprit["ping_pong"] else ""
                lines.append(
                    f"    {culprit['object']:<16} "
                    f"{culprit['copy_seconds_delta']:+.4f}s copies{marker}"
                )
        if self.ping_pongs:
            lines.append("")
            lines.append(
                f"  ping-pong objects in {self.label_b} "
                f"(evicted then refetched within "
                f"{self.ping_pong_window} kernels):"
            )
            for pong in self.ping_pongs[:top]:
                lines.append(
                    f"    {pong.name:<16} {pong.count} round trips, "
                    f"{pong.nbytes / 1e9:.2f} GB shuttled"
                )
        return "\n".join(lines)


def diff_runs(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    *,
    label_a: str = "A",
    label_b: str = "B",
    ping_pong_window: int = 8,
) -> RunDiff:
    """Attribute the virtual-time delta between two runs of one workload."""
    shape_a = parse_run(events_a)
    shape_b = parse_run(events_b)
    segments: list[SegmentDelta] = []
    # Lead time before the first kernel.
    segments.append(
        SegmentDelta(
            "lead", 0, "(before first kernel)",
            shape_a.gap_before(0), shape_b.gap_before(0),
            causes=_cause_deltas(
                shape_a.gap_causes.get(0, {}), shape_b.gap_causes.get(0, {})
            ),
        )
    )
    aligned = min(len(shape_a.kernels), len(shape_b.kernels))
    for i in range(aligned):
        ka, kb = shape_a.kernels[i], shape_b.kernels[i]
        segments.append(
            SegmentDelta(
                "kernel", i, kb.name, ka.span, kb.span,
                compute_delta=kb.compute - ka.compute,
                movement_delta=kb.movement - ka.movement,
                stall_delta=kb.stall - ka.stall,
                causes=_cause_deltas(ka.causes, kb.causes),
            )
        )
        if i + 1 <= aligned:
            gap_a = shape_a.gap_before(i + 1)
            gap_b = shape_b.gap_before(i + 1)
            causes = _cause_deltas(
                shape_a.gap_causes.get(i + 1, {}),
                shape_b.gap_causes.get(i + 1, {}),
            )
            if gap_a != gap_b or causes:
                segments.append(
                    SegmentDelta(
                        "gap", i + 1, f"(after {kb.name})", gap_a, gap_b,
                        movement_delta=gap_b - gap_a,
                        causes=causes,
                    )
                )
    # Structural divergence: kernels past the aligned prefix.
    tail_a = sum(
        shape_a.kernels[i].span + shape_a.gap_before(i)
        for i in range(aligned, len(shape_a.kernels))
    )
    tail_b = sum(
        shape_b.kernels[i].span + shape_b.gap_before(i)
        for i in range(aligned, len(shape_b.kernels))
    )
    if tail_a or tail_b:
        segments.append(
            SegmentDelta(
                "unaligned", aligned, "(unaligned kernels)", tail_a, tail_b
            )
        )
    ledger_b = build_ledger(events_b)
    return RunDiff(
        label_a, label_b, shape_a, shape_b, segments, ledger_b,
        ping_pong_window=ping_pong_window,
    )


class RunExplanation:
    """Single-run report: where the time went and which objects drove it."""

    def __init__(
        self,
        label: str,
        shape: RunShape,
        ledger: ObjectLedger,
        *,
        ping_pong_window: int = 8,
    ) -> None:
        self.label = label
        self.shape = shape
        self.ledger = ledger
        self.ping_pong_window = ping_pong_window
        self.ping_pongs = ledger.ping_pongs(window=ping_pong_window)

    @property
    def total(self) -> float:
        return self.shape.total

    @property
    def compute_seconds(self) -> float:
        return sum(k.compute for k in self.shape.kernels)

    @property
    def movement_seconds(self) -> float:
        return sum(k.movement for k in self.shape.kernels) + sum(
            self.shape.gap_before(i)
            for i in range(len(self.shape.kernels) + 1)
        )

    def hottest_kernels(self, n: int = 10) -> list[KernelSpan]:
        ranked = sorted(
            self.shape.kernels, key=lambda k: (-k.movement, k.index)
        )
        return [k for k in ranked[:n] if k.movement > 0.0]

    def to_json(self) -> dict[str, Any]:
        return {
            "run": self.label,
            "total": self.total,
            "kernels": len(self.shape.kernels),
            "compute_seconds": self.compute_seconds,
            "movement_seconds": self.movement_seconds,
            "hottest_kernels": [
                {
                    "index": k.index,
                    "name": k.name,
                    "span": k.span,
                    "compute": k.compute,
                    "movement": k.movement,
                    "stall": k.stall,
                    "causes": {
                        root: {"seconds": sec, "nbytes": int(nbytes)}
                        for root, (sec, nbytes) in sorted(k.causes.items())
                    },
                }
                for k in self.hottest_kernels()
            ],
            "ping_pong_window": self.ping_pong_window,
            "ledger": self.ledger.to_json(),
        }

    def render(self, *, top: int = 10) -> str:
        lines: list[str] = []
        lines.append(
            f"run: {self.label} — {self.total:.4f}s over "
            f"{len(self.shape.kernels)} kernels "
            f"(compute {self.compute_seconds:.4f}s, "
            f"movement+overheads {self.total - self.compute_seconds:.4f}s)"
        )
        churn = self.ledger.churn()
        lines.append(
            f"  objects: {churn['objects']}, evictions: "
            f"{churn['evictions']}, prefetches: {churn['prefetches']}, "
            f"ping-ponging: {churn['ping_pong_objects']}"
        )
        hot = self.hottest_kernels(top)
        if hot:
            lines.append("")
            lines.append("  kernels losing the most time to movement:")
            for kernel in hot:
                lines.append(
                    f"    #{kernel.index:<4} {kernel.name:<16} "
                    f"movement {kernel.movement:.4f}s of "
                    f"{kernel.span:.4f}s span (stall {kernel.stall:.4f}s)"
                )
        moved = self.ledger.top_moved(top)
        if moved:
            lines.append("")
            lines.append("  most-moved objects (bytes across tiers):")
            for history in moved:
                ratio = history.movement_ratio
                ratio_text = (
                    "∞" if ratio == float("inf") else f"{ratio:.2f}"
                )
                lines.append(
                    f"    {history.name:<16} "
                    f"{history.bytes_moved / 1e9:.2f} GB moved, "
                    f"{history.evictions} evictions / "
                    f"{history.prefetches} prefetches, "
                    f"moved/used {ratio_text}"
                )
        stalled = self.ledger.top_stalled(top)
        if stalled:
            lines.append("")
            lines.append("  objects charged the most stall time:")
            for history in stalled:
                lines.append(
                    f"    {history.name:<16} {history.stall_seconds:.4f}s"
                )
        if self.ping_pongs:
            lines.append("")
            lines.append(
                f"  ping-pong objects (evicted then refetched within "
                f"{self.ping_pong_window} kernels):"
            )
            for pong in self.ping_pongs[:top]:
                lines.append(
                    f"    {pong.name:<16} {pong.count} round trips, "
                    f"{pong.nbytes / 1e9:.2f} GB shuttled"
                )
        return "\n".join(lines)


def explain_run(
    events: Sequence[TraceEvent],
    *,
    label: str = "run",
    ping_pong_window: int = 8,
    stream: str | None = None,
) -> RunExplanation:
    """Build the single-run explanation report.

    Pass ``stream`` to scope the report to one tenant of a multi-stream
    trace (kernel spans, ledger, and ping-pong analysis all filter to that
    tenant's events).
    """
    if stream is not None:
        events = [e for e in events if e.stream == stream]
        label = f"{label}[{stream}]"
    return RunExplanation(
        label,
        parse_run(events),
        build_ledger(events),
        ping_pong_window=ping_pong_window,
    )
