"""Object-lifetime ledger: per-object histories folded from an event trace.

The tracer (PR 1) records *what happened*; the ledger answers *what happened
to this object*. :class:`LedgerBuilder` folds a :class:`TraceEvent` stream —
live from a tracer or loaded with :func:`~repro.telemetry.export.read_jsonl`
— into one :class:`ObjectHistory` per object name:

* birth (first ``place``) and death (``retire`` hint, split into explicit
  retires vs GC-driven ones via the attribution root);
* every move (``evict``/``prefetch``) with its byte count, clean flag,
  cause/root labels, and the kernel index it happened under;
* residency intervals per device, from ``setprimary`` transitions;
* dirty transitions (``setdirty``), the writeback debt history;
* stall seconds charged to the object by the executor's proportional
  stall-attribution (the ``objects``/``charged`` lists on ``stall`` events);
* how often eviction decisions chose or rejected the object.

:class:`ObjectLedger` then supports the queries the differential analyzer
and the profile report build on: ping-pong detection (evicted then pulled
back within *k* kernels), movement-per-use ratios, churn, and top-N lists.

Object names recur across training iterations (activation ``a3`` is a fresh
allocation every iteration); the ledger aggregates by name and counts the
incarnations, which is exactly the per-tensor view the paper's Figure 4
discussion takes ("the same buffers bounce between tiers every iteration").
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.telemetry.trace import (
    DECISION,
    EVICT,
    HINT,
    KERNEL_END,
    PLACE,
    PREFETCH,
    SETDIRTY,
    SETPRIMARY,
    STALL,
    TraceEvent,
)

__all__ = [
    "Move",
    "ResidencyInterval",
    "ObjectHistory",
    "ObjectLedger",
    "LedgerBuilder",
    "PingPong",
    "build_ledger",
    "label_subject",
]

# Hints that signal the application is about to *use* the object's bytes.
_USE_HINTS = frozenset({"will_read", "will_write", "will_use"})


def label_subject(label: str) -> str:
    """The object name inside an attribution label, or ``""``.

    Labels are ``kind[:qualifier]:subject`` (``evict:a3``,
    ``hint:will_read:a7``, ``place:w0``); the subject is the last
    ``:``-separated part. Unqualified labels (``gc``, ``iter_end``) name no
    object and map to ``""``.
    """
    if ":" not in label:
        return ""
    return label.rsplit(":", 1)[1]


class Move:
    """One tier crossing: an eviction or a prefetch of a whole object."""

    __slots__ = (
        "ts", "kind", "src", "dst", "nbytes", "clean",
        "kernel_index", "cause", "root",
    )

    def __init__(
        self,
        ts: float,
        kind: str,
        src: str,
        dst: str,
        nbytes: int,
        clean: bool,
        kernel_index: int,
        cause: str,
        root: str,
    ) -> None:
        self.ts = ts
        self.kind = kind
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.clean = clean
        self.kernel_index = kernel_index
        self.cause = cause
        self.root = root

    def to_json(self) -> dict[str, Any]:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "nbytes": self.nbytes,
            "clean": self.clean,
            "kernel_index": self.kernel_index,
            "cause": self.cause,
            "root": self.root,
        }


class ResidencyInterval:
    """A half-open span of virtual time the object's primary spent on a device."""

    __slots__ = ("device", "start", "end")

    def __init__(self, device: str, start: float, end: float | None = None) -> None:
        self.device = device
        self.start = start
        self.end = end

    @property
    def seconds(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def to_json(self) -> dict[str, Any]:
        return {"device": self.device, "start": self.start, "end": self.end}


class PingPong:
    """An object that was evicted and pulled straight back (thrash signature)."""

    __slots__ = ("name", "count", "nbytes", "trips")

    def __init__(self, name: str, count: int, nbytes: int, trips: list[tuple[int, int]]) -> None:
        self.name = name
        self.count = count          # evict->return round trips within the window
        self.nbytes = nbytes        # bytes moved by those round trips
        self.trips = trips          # (evict_kernel_index, return_kernel_index)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "nbytes": self.nbytes,
            "trips": [list(trip) for trip in self.trips],
        }


class ObjectHistory:
    """Everything the trace says about one object name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.size = 0                 # largest allocation seen under this name
        self.incarnations = 0         # place events (names recur per iteration)
        self.born_ts: float | None = None
        self.died_ts: float | None = None
        self.death: str = ""          # "retire" | "gc" | "" (still alive)
        self.moves: list[Move] = []
        self.residency: list[ResidencyInterval] = []
        self.evictions = 0
        self.clean_evictions = 0
        self.prefetches = 0
        self.bytes_moved = 0          # bytes actually copied across tiers
        self.uses = 0                 # will_read/will_write/will_use hints
        self.bytes_used = 0           # uses x size at hint time
        self.stall_seconds = 0.0      # executor stall time charged to us
        self.dirty_marks = 0          # clean -> dirty transitions
        self.decision_chosen = 0      # times a victim scan picked us
        self.decision_rejected = 0    # times a scan considered-and-skipped us

    @property
    def movement_ratio(self) -> float:
        """Bytes moved per byte the application asked to use.

        Above ~1.0 the runtime shuffles the object more than the workload
        reads it — the tell-tale of a placement/prefetch mistake.
        """
        if self.bytes_used <= 0:
            return float("inf") if self.bytes_moved > 0 else 0.0
        return self.bytes_moved / self.bytes_used

    def residency_seconds(self) -> dict[str, float]:
        """Closed-interval virtual seconds per device."""
        out: dict[str, float] = {}
        for interval in self.residency:
            out[interval.device] = out.get(interval.device, 0.0) + interval.seconds
        return out

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "size": self.size,
            "incarnations": self.incarnations,
            "born_ts": self.born_ts,
            "died_ts": self.died_ts,
            "death": self.death,
            "evictions": self.evictions,
            "clean_evictions": self.clean_evictions,
            "prefetches": self.prefetches,
            "bytes_moved": self.bytes_moved,
            "uses": self.uses,
            "bytes_used": self.bytes_used,
            "movement_ratio": (
                None if self.bytes_used <= 0 and self.bytes_moved > 0
                else self.movement_ratio
            ),
            "stall_seconds": self.stall_seconds,
            "dirty_marks": self.dirty_marks,
            "decision_chosen": self.decision_chosen,
            "decision_rejected": self.decision_rejected,
            "residency_seconds": self.residency_seconds(),
            "moves": [move.to_json() for move in self.moves],
            "residency": [interval.to_json() for interval in self.residency],
        }


class ObjectLedger:
    """Queryable collection of :class:`ObjectHistory` records."""

    def __init__(
        self,
        objects: dict[str, ObjectHistory],
        *,
        kernels: int,
        start_ts: float,
        end_ts: float,
    ) -> None:
        self.objects = objects
        self.kernels = kernels
        self.start_ts = start_ts
        self.end_ts = end_ts

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[ObjectHistory]:
        return iter(self.objects.values())

    def __contains__(self, name: str) -> bool:
        return name in self.objects

    def get(self, name: str) -> ObjectHistory | None:
        return self.objects.get(name)

    # -- queries -------------------------------------------------------------

    def ping_pongs(self, window: int = 8) -> list[PingPong]:
        """Objects evicted then brought back within ``window`` kernels.

        A round trip is an ``evict`` move followed by the object's next
        return to the evicting tier (a ``prefetch`` move) no more than
        ``window`` kernel launches later. Sorted worst first (most trips,
        then most bytes).
        """
        out: list[PingPong] = []
        for history in self.objects.values():
            trips: list[tuple[int, int]] = []
            nbytes = 0
            pending: Move | None = None
            for move in history.moves:
                if move.kind == EVICT:
                    pending = move
                elif move.kind == PREFETCH and pending is not None:
                    if move.dst == pending.src:
                        gap = move.kernel_index - pending.kernel_index
                        if 0 <= gap <= window:
                            trips.append(
                                (pending.kernel_index, move.kernel_index)
                            )
                            nbytes += pending.nbytes + move.nbytes
                    pending = None
            if trips:
                out.append(PingPong(history.name, len(trips), nbytes, trips))
        out.sort(key=lambda p: (-p.count, -p.nbytes, p.name))
        return out

    def churn(self) -> dict[str, int]:
        """Aggregate movement counts — the hot-set churn summary."""
        evictions = sum(h.evictions for h in self.objects.values())
        prefetches = sum(h.prefetches for h in self.objects.values())
        return {
            "objects": len(self.objects),
            "evictions": evictions,
            "prefetches": prefetches,
            "evicted_objects": sum(
                1 for h in self.objects.values() if h.evictions
            ),
            "ping_pong_objects": len(self.ping_pongs()),
        }

    def top_moved(self, n: int = 10) -> list[ObjectHistory]:
        ranked = sorted(
            self.objects.values(), key=lambda h: (-h.bytes_moved, h.name)
        )
        return [h for h in ranked[:n] if h.bytes_moved > 0]

    def top_stalled(self, n: int = 10) -> list[ObjectHistory]:
        ranked = sorted(
            self.objects.values(), key=lambda h: (-h.stall_seconds, h.name)
        )
        return [h for h in ranked[:n] if h.stall_seconds > 0]

    def to_json(self) -> dict[str, Any]:
        return {
            "kernels": self.kernels,
            "start_ts": self.start_ts,
            "end_ts": self.end_ts,
            "churn": self.churn(),
            "ping_pongs": [p.to_json() for p in self.ping_pongs()],
            "objects": {
                name: history.to_json()
                for name, history in sorted(self.objects.items())
            },
        }


class LedgerBuilder:
    """Single-pass fold of a trace into an :class:`ObjectLedger`.

    Feed events in emission order (the tracer's list order / JSONL line
    order); ``build`` closes any still-open residency intervals at the last
    timestamp seen and returns the ledger. The builder keys strictly off
    event args and attribution labels — it never needs the live objects, so
    it works identically on a deserialised trace.
    """

    def __init__(self) -> None:
        self._objects: dict[str, ObjectHistory] = {}
        self._open: dict[str, ResidencyInterval] = {}  # name -> open interval
        self._kernel_index = 0
        self._first_ts: float | None = None
        self._last_ts = 0.0

    def _history(self, name: str) -> ObjectHistory:
        history = self._objects.get(name)
        if history is None:
            history = self._objects[name] = ObjectHistory(name)
        return history

    def feed(self, events: Iterable[TraceEvent]) -> "LedgerBuilder":
        for event in events:
            self.add(event)
        return self

    def add(self, event: TraceEvent) -> None:
        ts = event.ts
        if self._first_ts is None:
            self._first_ts = ts
        if ts > self._last_ts:
            self._last_ts = ts
        kind = event.kind
        args = event.args
        if kind == KERNEL_END:
            self._kernel_index += 1
        elif kind == PLACE:
            history = self._history(str(args.get("obj", "")))
            history.incarnations += 1
            nbytes = int(args.get("nbytes", 0))
            if nbytes > history.size:
                history.size = nbytes
            if history.born_ts is None:
                history.born_ts = ts
        elif kind == SETPRIMARY:
            name = str(args.get("obj", ""))
            history = self._history(name)
            nbytes = int(args.get("nbytes", 0))
            if nbytes > history.size:
                history.size = nbytes
            device = str(args.get("device", ""))
            open_interval = self._open.get(name)
            if open_interval is not None:
                if open_interval.device == device:
                    return  # same-device re-set: not a residency change
                open_interval.end = ts
            interval = ResidencyInterval(device, ts)
            self._open[name] = interval
            history.residency.append(interval)
        elif kind in (EVICT, PREFETCH):
            name = str(args.get("obj", ""))
            history = self._history(name)
            clean = bool(args.get("clean", False))
            nbytes = int(args.get("nbytes", 0))
            history.moves.append(
                Move(
                    ts,
                    kind,
                    str(args.get("src", "")),
                    str(args.get("dst", "")),
                    nbytes,
                    clean,
                    self._kernel_index,
                    event.cause,
                    event.root,
                )
            )
            if kind == EVICT:
                history.evictions += 1
                if clean:
                    history.clean_evictions += 1
                else:
                    history.bytes_moved += nbytes
            else:
                history.prefetches += 1
                history.bytes_moved += nbytes
        elif kind == HINT:
            hint = str(args.get("hint", ""))
            name = str(args.get("subject", ""))
            if not name:
                return
            if hint in _USE_HINTS:
                history = self._history(name)
                history.uses += 1
                history.bytes_used += history.size
            elif hint == "retire":
                history = self._history(name)
                history.died_ts = ts
                # Application-driven retire vs the executor's GC sweep: the
                # sweep runs under a "gc" attribution scope.
                history.death = (
                    "gc" if event.root.startswith("gc") else "retire"
                )
                open_interval = self._open.pop(name, None)
                if open_interval is not None:
                    open_interval.end = ts
        elif kind == STALL:
            names = args.get("objects") or ()
            charges = args.get("charged") or ()
            for name, charge in zip(names, charges):
                self._history(str(name)).stall_seconds += float(charge)
        elif kind == SETDIRTY:
            if bool(args.get("dirty", False)):
                name = str(args.get("obj", ""))
                if name:
                    self._history(name).dirty_marks += 1
        elif kind == DECISION:
            chosen = str(args.get("chosen", ""))
            if chosen:
                self._history(chosen).decision_chosen += 1
            for entry in args.get("rejected") or ():
                name = str(entry.get("obj", "")) if isinstance(entry, dict) else ""
                if name:
                    self._history(name).decision_rejected += 1

    def build(self) -> ObjectLedger:
        for interval in self._open.values():
            if interval.end is None:
                interval.end = self._last_ts
        self._open.clear()
        return ObjectLedger(
            self._objects,
            kernels=self._kernel_index,
            start_ts=self._first_ts if self._first_ts is not None else 0.0,
            end_ts=self._last_ts,
        )


def build_ledger(events: Iterable[TraceEvent]) -> ObjectLedger:
    """One-shot convenience: fold ``events`` and build the ledger."""
    return LedgerBuilder().feed(events).build()
