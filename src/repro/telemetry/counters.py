"""Per-device traffic counters (the simulated uncore PMU).

Each :class:`TrafficCounters` instance tracks read and write bytes for one
memory device, exactly what the paper samples from hardware counters to build
Figure 5. Counters are monotonic; experiments diff snapshots across an
iteration window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import format_size

__all__ = ["TrafficCounters", "TrafficSnapshot"]


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable point-in-time copy of one device's traffic counters."""

    device: str
    read_bytes: int
    write_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def __sub__(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        if earlier.device != self.device:
            raise ValueError(
                f"cannot diff snapshots of {earlier.device!r} and {self.device!r}"
            )
        return TrafficSnapshot(
            device=self.device,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_bytes=self.write_bytes - earlier.write_bytes,
        )

    def __str__(self) -> str:
        return (
            f"{self.device}: read {format_size(self.read_bytes)}, "
            f"write {format_size(self.write_bytes)}"
        )


class TrafficCounters:
    """Monotonic read/write byte counters for a single device."""

    def __init__(self, device: str) -> None:
        self.device = device
        self._read_bytes = 0
        self._write_bytes = 0

    @property
    def read_bytes(self) -> int:
        return self._read_bytes

    @property
    def write_bytes(self) -> int:
        return self._write_bytes

    @property
    def total_bytes(self) -> int:
        return self._read_bytes + self._write_bytes

    def record_read(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"read byte count must be non-negative, got {nbytes}")
        self._read_bytes += nbytes

    def record_write(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"write byte count must be non-negative, got {nbytes}")
        self._write_bytes += nbytes

    def snapshot(self) -> TrafficSnapshot:
        return TrafficSnapshot(
            device=self.device,
            read_bytes=self._read_bytes,
            write_bytes=self._write_bytes,
        )

    def reset(self) -> None:
        """Zero the counters (only between experiments, never mid-run)."""
        self._read_bytes = 0
        self._write_bytes = 0

    def __repr__(self) -> str:
        return f"TrafficCounters({self.snapshot()})"
