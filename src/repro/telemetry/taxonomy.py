"""DAMOV-style movement-bottleneck taxonomy over a run's telemetry.

Folds a run's event stream (or the cheap monitor tier's rollups) into an
exact decomposition of wall time into four bottleneck classes:

* **compute** — kernel flop time (the part of ``compute`` past launch);
* **bandwidth** — byte-volume-proportional memory time: exposed kernel
  memory service plus the size-proportional share of demand copies;
* **latency** — transfer-count/fixed-overhead time: kernel launch, the
  per-operand setup share of exposed memory time, and the fixed share of
  demand copies (DAMOV's "latency-bound", KLOC's per-object overheads);
* **capacity** — eviction/recovery pressure: every copy rooted in an
  eviction-class cause, GC pauses, and the matching share of stalls.

The algebra is exact by construction. Kernel seconds split as
``seconds = (compute - launch) + launch + exposed`` where ``exposed =
seconds - compute`` is never negative (the executor's overlap rule is
``total = max(compute, dram) + nvram``); exposed memory time splits
bandwidth-vs-latency by the ratio of per-operand setup (``fixed``, carried
on ``kernel_end``) to total memory service. A copy's fixed cost is known
exactly from the simulator's cost model — ``setup(src) + setup(dst) +
per_transfer_overhead`` — so its remainder is pure byte volume. The wall
residual not covered by kernels, stalls, or GC is movement wall time and is
distributed over the copy classes proportionally (synchronous copies cover
it exactly; asynchronous copies hide under it); stalls are waits on copies
and follow the same mix. The only honest ``unattributed`` time is residual
wall with *zero* observed copies to carry it.

``classify_trace`` consumes a full traced event list and also yields
per-kernel-phase and per-window drill-downs; ``classify_monitor`` consumes
a :class:`~repro.telemetry.monitor.RuntimeMonitor` (the ~1% overhead tier)
and reaches the same verdicts from windowed rollups alone, approximating
each copy's fixed cost as one DRAM<->NVRAM pair — exact in the two-device
system this repo models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.telemetry.monitor import RuntimeMonitor, cause_kind
from repro.telemetry.trace import COPY_START, GC, KERNEL_END, STALL, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.common import ExperimentConfig
    from repro.telemetry.ledger import ObjectLedger

__all__ = [
    "CAPACITY_KINDS",
    "CLASSES",
    "CauseRollup",
    "CostModel",
    "Decomposition",
    "Taxonomy",
    "WindowSlice",
    "classify_monitor",
    "classify_trace",
    "movement_intensity",
]

CLASSES = ("compute", "bandwidth", "latency", "capacity")

# Copy root-cause kinds (see telemetry.monitor.cause_kind) that mean the
# system is shuffling bytes to *make room* rather than to serve a kernel:
# eviction victims, GC writebacks, recovery-ladder migrations, defrag
# compaction, iteration-end drains, and capacity reconfiguration.
CAPACITY_KINDS = frozenset(
    {
        "evict",
        "gc",
        "defrag",
        "iter_end",
        "oom_retry",
        "pressure",
        "recover",
        "recovery",
        "resize",
        "restore",
    }
)


@dataclass(frozen=True)
class CostModel:
    """The simulator's fixed-cost constants, for exact attribution.

    Mirrors what the runtime charges: ``launch_overhead`` per kernel,
    ``per_transfer_overhead`` per copy, and ``setup_latency`` per operand
    touch / copy endpoint keyed by device name. Build from the experiment
    config with :meth:`from_config` so the scale-division matches the run.
    """

    launch_overhead: float
    per_transfer_overhead: float
    setup_latency: Mapping[str, float]

    @classmethod
    def from_config(cls, config: "ExperimentConfig") -> "CostModel":
        dram = config.build_dram()
        nvram = config.build_nvram()
        return cls(
            launch_overhead=config.scaled_params().launch_overhead,
            per_transfer_overhead=config.copy_overhead / config.scale,
            setup_latency={
                dram.name: dram.bandwidth.setup_latency,
                nvram.name: nvram.bandwidth.setup_latency,
            },
        )

    def copy_fixed(self, src: str, dst: str, nbytes: int) -> float:
        """Exact fixed cost of one copy between named devices."""
        if nbytes <= 0:
            return 0.0
        return (
            self.setup_latency.get(src, 0.0)
            + self.setup_latency.get(dst, 0.0)
            + self.per_transfer_overhead
        )

    @property
    def default_copy_fixed(self) -> float:
        """Fixed cost assuming one endpoint per known device.

        The monitor tier records copy counts, not endpoints; with exactly
        two devices every cross-tier copy touches both, so this is exact
        there (and a documented approximation for same-device moves).
        """
        return sum(self.setup_latency.values()) + self.per_transfer_overhead


@dataclass(frozen=True)
class Decomposition:
    """Seconds per bottleneck class; fractions sum to 1 by construction."""

    compute: float = 0.0
    bandwidth: float = 0.0
    latency: float = 0.0
    capacity: float = 0.0
    unattributed: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.bandwidth
            + self.latency
            + self.capacity
            + self.unattributed
        )

    @property
    def attributed_fraction(self) -> float:
        total = self.total
        if total <= 0:
            return 1.0
        return 1.0 - self.unattributed / total

    def fractions(self) -> dict[str, float]:
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in (*CLASSES, "unattributed")}
        return {
            "compute": self.compute / total,
            "bandwidth": self.bandwidth / total,
            "latency": self.latency / total,
            "capacity": self.capacity / total,
            "unattributed": self.unattributed / total,
        }

    @property
    def dominant(self) -> str:
        """The bottleneck verdict: largest attributed class (stable ties)."""
        best = CLASSES[0]
        best_seconds = self.compute
        for name, seconds in (
            ("bandwidth", self.bandwidth),
            ("latency", self.latency),
            ("capacity", self.capacity),
        ):
            if seconds > best_seconds:
                best, best_seconds = name, seconds
        return best

    def to_json(self) -> dict[str, Any]:
        return {
            "seconds": {
                "compute": self.compute,
                "bandwidth": self.bandwidth,
                "latency": self.latency,
                "capacity": self.capacity,
                "unattributed": self.unattributed,
            },
            "fractions": self.fractions(),
            "dominant": self.dominant,
            "attributed_fraction": self.attributed_fraction,
        }


@dataclass(frozen=True)
class WindowSlice:
    """One fixed virtual-time interval's decomposition (drill-down)."""

    index: int
    start: float
    decomposition: Decomposition

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            **self.decomposition.to_json(),
        }


@dataclass(frozen=True)
class CauseRollup:
    """Copy traffic for one root-cause kind, with its assigned class."""

    kind: str
    klass: str
    copies: int
    seconds: float
    nbytes: int

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "class": self.klass,
            "copies": self.copies,
            "seconds": self.seconds,
            "nbytes": self.nbytes,
        }


class _Bucket:
    """Raw per-scope accumulator, finalized into a Decomposition."""

    __slots__ = (
        "kernel_compute", "kernel_bandwidth", "kernel_latency",
        "copy_capacity", "copy_latency", "copy_bandwidth",
        "stall_seconds", "gc_seconds",
    )

    def __init__(self) -> None:
        self.kernel_compute = 0.0
        self.kernel_bandwidth = 0.0
        self.kernel_latency = 0.0
        self.copy_capacity = 0.0
        self.copy_latency = 0.0
        self.copy_bandwidth = 0.0
        self.stall_seconds = 0.0
        self.gc_seconds = 0.0

    def add_kernel(self, seconds: float, compute: float, memory: float,
                   fixed: float, launch_overhead: float) -> None:
        launch = min(launch_overhead, compute)
        exposed = max(0.0, seconds - compute)
        share = min(1.0, fixed / memory) if memory > 0.0 else 0.0
        self.kernel_compute += compute - launch
        self.kernel_latency += launch + exposed * share
        self.kernel_bandwidth += exposed * (1.0 - share)

    def add_copy(self, klass: int, seconds: float) -> None:
        if klass == 0:
            self.copy_capacity += seconds
        elif klass == 1:
            self.copy_latency += seconds
        else:
            self.copy_bandwidth += seconds

    def finalize(
        self, factor: float, shares: tuple[float, float, float], exact: bool
    ) -> Decomposition:
        """Assemble class seconds using the run-global movement scaling.

        ``factor`` rescales raw copy seconds onto the movement wall
        residual; ``shares`` split stalls by the run's copy-class mix.
        When the run saw no copies at all (``exact`` False for movement),
        residual movement/stall time is honestly unattributed.
        """
        cap_share, lat_share, bw_share = shares
        if exact:
            capacity = self.copy_capacity * factor + self.stall_seconds * cap_share
            latency = self.copy_latency * factor + self.stall_seconds * lat_share
            bandwidth = self.copy_bandwidth * factor + self.stall_seconds * bw_share
            unattributed = 0.0
        else:
            capacity = latency = bandwidth = 0.0
            unattributed = self.stall_seconds
        return Decomposition(
            compute=self.kernel_compute,
            bandwidth=self.kernel_bandwidth + bandwidth,
            latency=self.kernel_latency + latency,
            capacity=capacity + self.gc_seconds,
            unattributed=unattributed,
        )


@dataclass(frozen=True)
class Taxonomy:
    """A classified run: the verdict plus everything backing it up."""

    source: str  # "trace" | "monitor"
    wall_seconds: float
    decomposition: Decomposition
    phases: dict[str, Decomposition] = field(default_factory=dict)
    windows: tuple[WindowSlice, ...] = ()
    causes: tuple[CauseRollup, ...] = ()
    kernels: int = 0
    copies: int = 0
    copy_bytes: int = 0
    copy_seconds: float = 0.0
    stall_seconds: float = 0.0
    gc_seconds: float = 0.0
    movement_intensity: float | None = None

    @property
    def verdict(self) -> str:
        return self.decomposition.dominant

    def to_json(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "wall_seconds": self.wall_seconds,
            "verdict": self.verdict,
            "decomposition": self.decomposition.to_json(),
            "phases": {
                name: decomposition.to_json()
                for name, decomposition in sorted(self.phases.items())
            },
            "windows": [window.to_json() for window in self.windows],
            "causes": [cause.to_json() for cause in self.causes],
            "kernels": self.kernels,
            "copies": self.copies,
            "copy_bytes": self.copy_bytes,
            "copy_seconds": self.copy_seconds,
            "stall_seconds": self.stall_seconds,
            "gc_seconds": self.gc_seconds,
            "movement_intensity": self.movement_intensity,
        }


def movement_intensity(ledger: "ObjectLedger") -> float | None:
    """Roofline x-axis: bytes moved per byte used, over the whole run.

    ``None`` when the run recorded no uses (nothing to normalise by);
    0.0 is a perfectly-placed run, >1 moves objects more than it uses them.
    """
    moved = sum(h.bytes_moved for h in ledger.objects.values())
    used = sum(h.bytes_used for h in ledger.objects.values())
    if used <= 0:
        return None if moved > 0 else 0.0
    return moved / used


def _copy_class(kind: str) -> int:
    return 0 if kind in CAPACITY_KINDS else 1  # 1 = demand (split later)


def classify_trace(
    events: Iterable[TraceEvent],
    cost: CostModel,
    *,
    window_seconds: float | None = None,
    ledger: "ObjectLedger | None" = None,
) -> Taxonomy:
    """Classify a fully-traced run; single pass over the event list.

    Copies and stalls between two kernels belong to the *next* kernel's
    phase (synchronous placement copies are emitted inside the kernel's
    start/end span, so this charges them to the kernel they served);
    anything after the last kernel lands in ``(drain)``.
    """
    run = _Bucket()
    phase_buckets: dict[str, _Bucket] = {}
    window_buckets: dict[int, _Bucket] = {}
    pending = _Bucket()  # copy/stall/gc contributions awaiting a phase
    cause_copies: dict[str, int] = {}
    cause_seconds: dict[str, float] = {}
    cause_bytes: dict[str, int] = {}

    wall = 0.0
    kernel_total = 0.0
    kernels = copies = 0
    copy_bytes = 0
    copy_seconds_total = 0.0
    stall_total = 0.0
    gc_total = 0.0

    def window_bucket(ts: float) -> "_Bucket | None":
        if window_seconds is None:
            return None
        index = int(ts / window_seconds)
        bucket = window_buckets.get(index)
        if bucket is None:
            bucket = window_buckets[index] = _Bucket()
        return bucket

    for event in events:
        kind = event.kind
        ts = event.ts
        if ts > wall:
            wall = ts
        if kind == KERNEL_END:
            args = event.args
            seconds = float(args.get("seconds", 0.0))
            compute = float(args.get("compute", 0.0))
            memory = float(args.get("memory", 0.0))
            fixed = float(args.get("fixed", 0.0))
            phase = str(args.get("phase", "")) or "(unphased)"
            kernels += 1
            kernel_total += seconds
            run.add_kernel(seconds, compute, memory, fixed, cost.launch_overhead)
            bucket = phase_buckets.get(phase)
            if bucket is None:
                bucket = phase_buckets[phase] = _Bucket()
            bucket.add_kernel(seconds, compute, memory, fixed, cost.launch_overhead)
            # The movement that fed this kernel resolves to its phase now.
            bucket.copy_capacity += pending.copy_capacity
            bucket.copy_latency += pending.copy_latency
            bucket.copy_bandwidth += pending.copy_bandwidth
            bucket.stall_seconds += pending.stall_seconds
            bucket.gc_seconds += pending.gc_seconds
            pending = _Bucket()
            wbucket = window_bucket(ts)
            if wbucket is not None:
                wbucket.add_kernel(
                    seconds, compute, memory, fixed, cost.launch_overhead
                )
        elif kind == COPY_START:
            args = event.args
            seconds = float(args.get("seconds", 0.0))
            nbytes = int(args.get("nbytes", 0))
            src = str(args.get("src", ""))
            dst = str(args.get("dst", ""))
            # Innermost cause = the copy's mechanism. An eviction nested
            # under a placement root is still capacity work; the root is
            # cost attribution, not classification.
            ckind = cause_kind(event.cause)
            copies += 1
            copy_bytes += nbytes
            copy_seconds_total += seconds
            cause_copies[ckind] = cause_copies.get(ckind, 0) + 1
            cause_seconds[ckind] = cause_seconds.get(ckind, 0.0) + seconds
            cause_bytes[ckind] = cause_bytes.get(ckind, 0) + nbytes
            if ckind in CAPACITY_KINDS:
                contributions = ((0, seconds),)
            else:
                fixed = min(seconds, cost.copy_fixed(src, dst, nbytes))
                contributions = ((1, fixed), (2, seconds - fixed))
            for klass, amount in contributions:
                run.add_copy(klass, amount)
                pending.add_copy(klass, amount)
                wbucket = window_bucket(ts)
                if wbucket is not None:
                    wbucket.add_copy(klass, amount)
        elif kind == STALL:
            seconds = float(event.args.get("seconds", 0.0))
            stall_total += seconds
            run.stall_seconds += seconds
            pending.stall_seconds += seconds
            wbucket = window_bucket(ts)
            if wbucket is not None:
                wbucket.stall_seconds += seconds
        elif kind == GC:
            seconds = float(event.args.get("seconds", 0.0))
            gc_total += seconds
            run.gc_seconds += seconds
            pending.gc_seconds += seconds
            wbucket = window_bucket(ts)
            if wbucket is not None:
                wbucket.gc_seconds += seconds

    if pending.copy_capacity or pending.copy_latency or pending.copy_bandwidth \
            or pending.stall_seconds or pending.gc_seconds:
        drain = phase_buckets.setdefault("(drain)", _Bucket())
        drain.copy_capacity += pending.copy_capacity
        drain.copy_latency += pending.copy_latency
        drain.copy_bandwidth += pending.copy_bandwidth
        drain.stall_seconds += pending.stall_seconds
        drain.gc_seconds += pending.gc_seconds

    factor, shares, exact, movement_wall = _movement_scaling(
        wall, kernel_total, stall_total, gc_total,
        run.copy_capacity, run.copy_latency, run.copy_bandwidth,
    )
    decomposition = run.finalize(factor, shares, exact)
    if not exact and movement_wall > 0.0:
        # Residual wall with zero copies to carry it: honestly unknown.
        decomposition = replace(
            decomposition,
            unattributed=decomposition.unattributed + movement_wall,
        )
    phases = {
        name: bucket.finalize(factor, shares, exact)
        for name, bucket in phase_buckets.items()
    }
    windows = tuple(
        WindowSlice(
            index=index,
            start=index * window_seconds,  # type: ignore[operator]
            decomposition=bucket.finalize(factor, shares, exact),
        )
        for index, bucket in sorted(window_buckets.items())
    )
    causes = tuple(
        CauseRollup(
            kind=kind,
            klass="capacity" if kind in CAPACITY_KINDS else "demand",
            copies=cause_copies[kind],
            seconds=cause_seconds[kind],
            nbytes=cause_bytes[kind],
        )
        for kind in sorted(cause_seconds, key=lambda k: -cause_seconds[k])
    )
    return Taxonomy(
        source="trace",
        wall_seconds=wall,
        decomposition=decomposition,
        phases=phases,
        windows=windows,
        causes=causes,
        kernels=kernels,
        copies=copies,
        copy_bytes=copy_bytes,
        copy_seconds=copy_seconds_total,
        stall_seconds=stall_total,
        gc_seconds=gc_total,
        movement_intensity=(
            movement_intensity(ledger) if ledger is not None else None
        ),
    )


def classify_monitor(monitor: RuntimeMonitor, cost: CostModel) -> Taxonomy:
    """Classify from the cheap monitor tier's rollups alone.

    Works on both a live :class:`MonitorTracer` feed (``note_*``) and an
    offline ``observe_all`` replay. Coarser than :func:`classify_trace` —
    the fast path does not carry per-copy endpoints or kernel phases — but
    the class algebra is identical, with each copy's fixed cost taken as
    :attr:`CostModel.default_copy_fixed`.
    """
    totals = monitor.totals
    run = _Bucket()
    kernels = int(totals["kernels"])
    kernel_total = float(totals["kernel_seconds"])
    compute = float(totals["kernel_compute_seconds"])
    memory = float(totals["kernel_memory_seconds"])
    fixed = float(totals["kernel_fixed_seconds"])
    run.add_kernel(
        kernel_total, compute, memory, fixed, kernels * cost.launch_overhead
    )
    cause_copies = monitor.copies_by_cause
    cause_seconds = monitor.copy_seconds_by_cause
    copies = 0
    for kind, seconds in cause_seconds.items():
        count = cause_copies.get(kind, 0)
        copies += count
        if kind in CAPACITY_KINDS:
            run.add_copy(0, seconds)
        else:
            fixed_est = min(seconds, count * cost.default_copy_fixed)
            run.add_copy(1, fixed_est)
            run.add_copy(2, seconds - fixed_est)
    stall_total = float(totals["stall_seconds"])
    gc_total = float(totals["gc_seconds"])
    run.stall_seconds = stall_total
    run.gc_seconds = gc_total
    wall = monitor.last_ts
    factor, shares, exact, movement_wall = _movement_scaling(
        wall, kernel_total, stall_total, gc_total,
        run.copy_capacity, run.copy_latency, run.copy_bandwidth,
    )
    decomposition = run.finalize(factor, shares, exact)
    if not exact and movement_wall > 0.0:
        decomposition = replace(
            decomposition,
            unattributed=decomposition.unattributed + movement_wall,
        )
    causes = tuple(
        CauseRollup(
            kind=kind,
            klass="capacity" if kind in CAPACITY_KINDS else "demand",
            copies=cause_copies.get(kind, 0),
            seconds=seconds,
            nbytes=0,
        )
        for kind, seconds in sorted(
            cause_seconds.items(), key=lambda item: -item[1]
        )
    )
    return Taxonomy(
        source="monitor",
        wall_seconds=wall,
        decomposition=decomposition,
        causes=causes,
        kernels=kernels,
        copies=copies,
        copy_bytes=int(totals["copy_bytes"]),
        copy_seconds=float(totals["copy_seconds"]),
        stall_seconds=stall_total,
        gc_seconds=gc_total,
    )


def _movement_scaling(
    wall: float,
    kernel_total: float,
    stall_total: float,
    gc_total: float,
    cap_raw: float,
    lat_raw: float,
    bw_raw: float,
) -> tuple[float, tuple[float, float, float], bool, float]:
    """The run-global movement rescale: (factor, stall shares, exact?, residual).

    The wall residual past kernels/stalls/GC is time the clock advanced for
    data movement. Synchronous copies account for it exactly (the residual
    equals summed copy seconds); asynchronous copies overlap, so the
    rescale shrinks their raw seconds onto the exposed residual instead of
    double-counting hidden movement.
    """
    total_copy = cap_raw + lat_raw + bw_raw
    movement_wall = wall - kernel_total - stall_total - gc_total
    if movement_wall < 0.0:
        movement_wall = 0.0
    if total_copy <= 0.0:
        return 0.0, (0.0, 0.0, 0.0), False, movement_wall
    factor = movement_wall / total_copy
    shares = (cap_raw / total_copy, lat_raw / total_copy, bw_raw / total_copy)
    return factor, shares, True, movement_wall
