"""Metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` per session replaces the scattered
``policy_stats()`` dicts: policy counters are registry-backed (see
:class:`~repro.policies.optimizing.PolicyStats`), the manager records
eviction-cascade depths, and :func:`derive_metrics` rolls a finished event
trace into movement metrics — copy bytes by cause, hint-to-movement latency
— so reports and tests read one flat namespace.

Labels follow the Prometheus convention: ``counter("copy_bytes",
cause="evict")`` registers ``copy_bytes{cause=evict}``. Keys are
deterministic (labels sorted), so registry dumps are diffable.
"""

from __future__ import annotations

from typing import Iterable

from repro.telemetry.trace import (
    COPY_START,
    EVICT_SCAN,
    TraceEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "derive_metrics",
    "attribute_copies",
    "CauseBucket",
    "Attribution",
]


class Counter:
    """A cumulative count (monotonic in normal use)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming summary of an observed distribution (count/sum/min/max)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A flat namespace of typed metrics, keyed by name + sorted labels."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    @staticmethod
    def key(name: str, labels: dict[str, str]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    def _get(self, kind: type, name: str, labels: dict[str, str]):
        key = self.key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind()
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {key!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def reset(self) -> None:
        """Zero every registered metric *in place*.

        Keys and metric object identity are preserved: policy stats hold
        references to their registry counters (:class:`PolicyStats.attach`
        deliberately carries pre-bind counts over), so dropping the dict
        would silently disconnect them. Resetting in place gives a run
        counters that start at zero without rewiring anything — the guard
        :func:`repro.experiments.common.run_trace_mode` applies between
        ablation modes so counts can never bleed from one run into the next.
        """
        for metric in self._metrics.values():
            metric.reset()

    def as_dict(self) -> dict[str, object]:
        """Flat, deterministic dump (histograms expand to summary dicts)."""
        out: dict[str, object] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, Histogram):
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out


# -- trace-derived metrics -----------------------------------------------------


def derive_metrics(
    events: Iterable[TraceEvent],
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Roll an event trace up into movement metrics.

    * ``trace.events{kind=...}`` — event counts by kind;
    * ``trace.copy_bytes{cause=...}`` — copied bytes by *root* cause (the
      hint/decision that ultimately triggered the copy);
    * ``trace.hint_to_movement_seconds`` — virtual latency from the root
      scope opening to the copy starting (non-zero under async movement);
    * ``trace.eviction_cascade_depth`` — victims per ``evictfrom`` span.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for event in events:
        registry.counter("trace.events", kind=event.kind).inc()
        if event.kind == COPY_START:
            cause = event.root or "unattributed"
            nbytes = int(event.args.get("nbytes", 0))
            registry.counter("trace.copy_bytes", cause=cause).inc(nbytes)
            registry.counter("trace.copies", cause=cause).inc()
            if event.root_ts is not None:
                registry.histogram("trace.hint_to_movement_seconds").observe(
                    event.ts - event.root_ts
                )
        elif event.kind == EVICT_SCAN:
            registry.histogram("trace.eviction_cascade_depth").observe(
                int(event.args.get("depth", 0))
            )
    return registry


# -- copy attribution ----------------------------------------------------------


class CauseBucket:
    """Aggregated movement for one root cause."""

    __slots__ = ("cause", "copies", "nbytes")

    def __init__(self, cause: str) -> None:
        self.cause = cause
        self.copies = 0
        self.nbytes = 0


class Attribution:
    """Copied bytes grouped by root cause, for the profile report."""

    def __init__(self, buckets: list[CauseBucket]) -> None:
        self.buckets = sorted(
            buckets, key=lambda b: (-b.nbytes, -b.copies, b.cause)
        )

    @property
    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self.buckets)

    @property
    def total_copies(self) -> int:
        return sum(b.copies for b in self.buckets)

    @property
    def attributed_bytes(self) -> int:
        return sum(b.nbytes for b in self.buckets if b.cause)

    @property
    def attributed_fraction(self) -> float:
        """Fraction of copied bytes carrying a root cause (1.0 if no copies)."""
        total = self.total_bytes
        if total == 0:
            return 1.0
        return self.attributed_bytes / total


def attribute_copies(events: Iterable[TraceEvent]) -> Attribution:
    """Group every copy's bytes by the root cause that triggered it."""
    buckets: dict[str, CauseBucket] = {}
    for event in events:
        if event.kind != COPY_START:
            continue
        bucket = buckets.get(event.root)
        if bucket is None:
            bucket = buckets[event.root] = CauseBucket(event.root)
        bucket.copies += 1
        bucket.nbytes += int(event.args.get("nbytes", 0))
    return Attribution(list(buckets.values()))
