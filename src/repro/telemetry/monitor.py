"""Always-on runtime monitor: bounded-memory observability (PR 6 tentpole).

Full tracing (:class:`~repro.telemetry.trace.Tracer`) records every event and
is priceless after the fact but too heavy to leave on; :data:`NULL_TRACER`
costs nothing and sees nothing. This module is the production-grade middle
tier the paper's online-guidance relatives (Olson et al., Jenga) assume: an
event *consumer* whose memory is bounded no matter how long the run is.

Four cooperating pieces, all driven by :meth:`RuntimeMonitor.observe`:

* :class:`RollupAggregator` — folds events into fixed-interval virtual-time
  windows (bytes moved per cause, stall seconds, evictions/prefetches,
  per-device occupancy, per-tenant usage). O(max_windows) memory; windows
  that age out are folded into cumulative totals, never lost.
* :class:`QuantileSketch` — streaming p50/p95/p99 for kernel, stall, and
  copy latencies without storing samples. Log-bucketed (HDR-histogram
  style): geometric buckets of ratio ``(1+eps)**2`` guarantee every
  reported quantile is within ``eps`` relative error of a sample at that
  rank — accuracy-tested against exact ``numpy.percentile``.
* :class:`FlightRecorder` — a fixed-size ring of the most recent events,
  dumped to JSONL automatically when a fault fires, the watchdog strikes,
  or the recovery ladder escalates: the crashed run's "black box".
* :class:`AlertRule` / :class:`HealthSnapshot` — declarative per-window
  health checks (stall fraction, ping-pong rate, occupancy, quota
  pressure) with hysteresis, emitting ``alert`` events into the trace.

:class:`MonitorTracer` adapts the monitor to the runtime's tracer slot: it
*is* a :class:`Tracer` (same scopes, same virtual-time stamps — so cause
attribution and determinism carry over) but feeds each event straight into
the monitor and, by default, does not retain it. The monitor is pure
observation: it never advances the clock and never feeds back into policy
decisions, so results are bit-identical with it on or off.

Everything here also works *offline*: replaying a JSONL trace through
``observe`` produces the same rollups/alerts the live run would have seen —
that is what ``python -m repro monitor trace.jsonl`` does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.telemetry.timeline import Timeline
from repro.telemetry.trace import (
    ALERT,
    ALLOC,
    COPY_END,
    COPY_RETRY,
    COPY_START,
    DETACH,
    EVICT,
    FAULT,
    FREE,
    GC,
    KERNEL_END,
    OOM_RETRY,
    POLICY_STRIKE,
    PREFETCH,
    QUARANTINE,
    RECOVERY,
    RECOVERY_STEP,
    RESIZE,
    RESTORE,
    SNAPSHOT,
    STALL,
    TraceEvent,
    Tracer,
    _NULL_SCOPE,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.clock import SimClock

__all__ = [
    "QuantileSketch",
    "RollupWindow",
    "RollupAggregator",
    "FlightRecorder",
    "AlertRule",
    "AlertState",
    "DEFAULT_ALERT_RULES",
    "HealthSnapshot",
    "MonitorConfig",
    "RuntimeMonitor",
    "MonitorTracer",
    "FLIGHT_SCHEMA_VERSION",
]

FLIGHT_SCHEMA_VERSION = 1

# Ladder rungs considered an *escalation*: reaching them means the cheap
# collect/evict rungs were not enough, which is flight-dump-worthy context.
_ESCALATION_STEPS = frozenset({"defrag", "fallback", "exhausted"})


# -- streaming quantile sketch -------------------------------------------------


class QuantileSketch:
    """Streaming quantiles over positive samples in bounded memory.

    Values are hashed into geometric buckets ``[g**i, g**(i+1))`` with
    ``g = (1 + relative_error)**2``; a quantile query walks the (sparse)
    buckets in index order to the target rank and reports the bucket's
    geometric midpoint, clamped to the observed ``[min, max]``. The midpoint
    of a ratio-``g`` bucket is within ``sqrt(g) - 1 == relative_error`` of
    every sample in it, which bounds the reported quantile's relative error
    against the true order statistic at that rank.

    Chosen over the P² estimator because P²'s parabolic interpolation is
    badly wrong on bimodal inputs; bucket counting has no distributional
    assumptions. Non-positive samples (latencies are never negative, but
    zero-duration events exist) are counted exactly in a dedicated bucket.
    Memory is O(distinct buckets): spanning 1ns..1e6s at the default 0.5%
    error needs at most ~3500 entries, in practice far fewer.
    """

    __slots__ = (
        "relative_error", "_log_growth", "_half_log_growth",
        "count", "total", "minimum", "maximum", "_nonpos", "_buckets",
    )

    def __init__(self, relative_error: float = 0.005) -> None:
        if not 0.0 < relative_error < 0.5:
            raise ValueError(
                f"relative_error must be in (0, 0.5), got {relative_error}"
            )
        self.relative_error = relative_error
        growth = (1.0 + relative_error) ** 2
        self._log_growth = math.log(growth)
        self._half_log_growth = 0.5 * self._log_growth
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._nonpos = 0  # samples <= 0, kept out of the log buckets
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self._nonpos += 1
            return
        index = math.floor(math.log(value) / self._log_growth)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of everything observed so far.

        Rank convention matches ``numpy.percentile``'s default: the target
        rank is ``q * (count - 1)``; the sample holding that (floored) rank
        is located and its bucket midpoint returned. Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self.minimum == self.maximum:
            return self.minimum  # constant stream: exact
        rank = math.floor(q * (self.count - 1))
        if rank < self._nonpos:
            # All non-positive samples sort first; report the worst (closest
            # to zero) bound we know, which for latencies is simply min.
            return min(self.minimum, 0.0)
        seen = self._nonpos
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                midpoint = math.exp(
                    index * self._log_growth + self._half_log_growth
                )
                return min(max(midpoint, self.minimum), self.maximum)
        return self.maximum  # unreachable unless counts drifted

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus the p50/p95/p99 the dashboard shows."""
        if self.count == 0:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


# -- windowed rollups ----------------------------------------------------------


def cause_kind(root: str) -> str:
    """Bucket a root-cause label to its *kind*, bounding cardinality.

    Scope labels embed object names (``hint:will_write:a7``,
    ``evict:conv3.w``); per-object keys would grow without bound on a long
    run, so rollups key on the label's kind prefix: ``hint:will_write``,
    ``evict``, ``place``, ... Empty roots roll up as ``unattributed``.
    """
    if not root:
        return "unattributed"
    first, sep, rest = root.partition(":")
    if first == "hint" and sep:
        return "hint:" + rest.partition(":")[0]
    return first


class RollupWindow:
    """Aggregated activity for one fixed virtual-time interval."""

    __slots__ = (
        "index", "start", "duration", "events",
        "copies", "copy_bytes", "copy_bytes_by_cause",
        "copy_seconds", "copy_seconds_by_cause", "copies_by_cause",
        "stalls", "stall_seconds", "evictions", "prefetches",
        "allocs", "alloc_bytes", "frees", "free_bytes",
        "kernels", "kernel_seconds", "kernel_compute_seconds",
        "kernel_memory_seconds", "kernel_fixed_seconds",
        "gcs", "gc_seconds", "oom_retries",
        "faults", "recovery_steps", "recoveries", "copy_retries",
        "strikes", "quarantines",
        "occupancy", "inflight_copy_bytes", "tenant_used",
    )

    def __init__(self, index: int, duration: float) -> None:
        self.index = index
        self.start = index * duration
        self.duration = duration
        self.events = 0
        self.copies = 0
        self.copy_bytes = 0
        self.copy_bytes_by_cause: dict[str, int] = {}
        self.copy_seconds = 0.0
        self.copy_seconds_by_cause: dict[str, float] = {}
        self.copies_by_cause: dict[str, int] = {}
        self.stalls = 0
        self.stall_seconds = 0.0
        self.evictions = 0
        self.prefetches = 0
        self.allocs = 0
        self.alloc_bytes = 0
        self.frees = 0
        self.free_bytes = 0
        self.kernels = 0
        self.kernel_seconds = 0.0
        self.kernel_compute_seconds = 0.0
        self.kernel_memory_seconds = 0.0
        self.kernel_fixed_seconds = 0.0
        self.gcs = 0
        self.gc_seconds = 0.0
        self.oom_retries = 0
        self.faults = 0
        self.recovery_steps = 0
        self.recoveries = 0
        self.copy_retries = 0
        self.strikes = 0
        self.quarantines = 0
        # Filled at window close from the monitor's live state.
        self.occupancy: dict[str, int] = {}
        self.inflight_copy_bytes = 0
        self.tenant_used: dict[str, int] = {}

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def stall_fraction(self) -> float:
        return self.stall_seconds / self.duration if self.duration else 0.0

    @property
    def ping_pong_rate(self) -> float:
        """Evict/prefetch *churn* per second: min(evictions, prefetches)/dt.

        A window that only evicts (pressure) or only prefetches (warm-up) is
        healthy; paired evict+refetch in the same window is thrash.
        """
        if not self.duration:
            return 0.0
        return min(self.evictions, self.prefetches) / self.duration

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "duration": self.duration,
            "events": self.events,
            "copies": self.copies,
            "copy_bytes": self.copy_bytes,
            "copy_bytes_by_cause": dict(
                sorted(self.copy_bytes_by_cause.items())
            ),
            "copy_seconds": self.copy_seconds,
            "copy_seconds_by_cause": dict(
                sorted(self.copy_seconds_by_cause.items())
            ),
            "copies_by_cause": dict(sorted(self.copies_by_cause.items())),
            "stalls": self.stalls,
            "stall_seconds": self.stall_seconds,
            "stall_fraction": self.stall_fraction,
            "evictions": self.evictions,
            "prefetches": self.prefetches,
            "ping_pong_rate": self.ping_pong_rate,
            "allocs": self.allocs,
            "alloc_bytes": self.alloc_bytes,
            "frees": self.frees,
            "free_bytes": self.free_bytes,
            "kernels": self.kernels,
            "kernel_seconds": self.kernel_seconds,
            "kernel_compute_seconds": self.kernel_compute_seconds,
            "kernel_memory_seconds": self.kernel_memory_seconds,
            "kernel_fixed_seconds": self.kernel_fixed_seconds,
            "gcs": self.gcs,
            "gc_seconds": self.gc_seconds,
            "oom_retries": self.oom_retries,
            "faults": self.faults,
            "recovery_steps": self.recovery_steps,
            "recoveries": self.recoveries,
            "copy_retries": self.copy_retries,
            "strikes": self.strikes,
            "quarantines": self.quarantines,
            "occupancy": dict(sorted(self.occupancy.items())),
            "inflight_copy_bytes": self.inflight_copy_bytes,
            "tenant_used": dict(sorted(self.tenant_used.items())),
        }


class RollupAggregator:
    """Fixed-interval windows over virtual time, O(max_windows) memory.

    Windows *close* when an event lands in a later interval; the close
    callback (alert evaluation, occupancy snapshotting) fires once per
    window in index order. Async completions (``emit_at``) can arrive with
    an earlier timestamp than the event that closed their window — such
    late events still fold into the retained window (counts stay exact) or,
    past the retention horizon, into the folded totals; only the per-window
    *alert view* is best-effort at close time. Retention is bounded:
    windows older than ``max_windows`` fold into a cumulative
    :class:`RollupWindow` (index -1) and are dropped.
    """

    def __init__(
        self,
        window_seconds: float,
        max_windows: int,
        on_close: Callable[[RollupWindow], None] | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        self.window_seconds = window_seconds
        self.max_windows = max_windows
        self.on_close = on_close
        self.windows: dict[int, RollupWindow] = {}  # insertion == index order
        self.folded = RollupWindow(-1, window_seconds)
        self.windows_closed = 0
        self._highest = -1
        # One-entry cache for the common case (consecutive events landing in
        # the same window). The bounds are plain floats so the monitor-tier
        # fast path can test membership with two comparisons — no division,
        # no dict probe, no call. Invalidated whenever the cached window
        # could be folded away or has been closed by finish().
        self._cache_lo = math.inf
        self._cache_hi = -math.inf
        self._cache_window: RollupWindow | None = None

    def window_for(self, ts: float) -> RollupWindow:
        """The window containing ``ts``, closing any interval it skips past."""
        if self._cache_lo <= ts < self._cache_hi:
            return self._cache_window  # type: ignore[return-value]
        index = int(ts / self.window_seconds)
        window = self.windows.get(index)
        if window is None:
            if index > self._highest:
                if self._highest >= 0:
                    self._close_through(index - 1)
                self._highest = index
            window = self.windows[index] = RollupWindow(
                index, self.window_seconds
            )
            self._evict_old()
        self._cache_lo = window.start
        self._cache_hi = window.start + window.duration
        self._cache_window = window
        return window

    def _invalidate_cache(self) -> None:
        self._cache_lo = math.inf
        self._cache_hi = -math.inf
        self._cache_window = None

    def _close_through(self, last: int) -> None:
        # Close every retained window up to `last`, materialising empty gap
        # windows so hysteresis counts idle intervals too. A jump larger
        # than the retention span skips the unobservable middle.
        first = self._highest
        if last - first >= self.max_windows:
            first = last - self.max_windows + 1
        for index in range(self._highest, last + 1):
            window = self.windows.get(index)
            if window is None:
                if index < first:
                    continue
                window = self.windows[index] = RollupWindow(
                    index, self.window_seconds
                )
            self.windows_closed += 1
            if self.on_close is not None:
                self.on_close(window)
        self._evict_old()

    def finish(self) -> None:
        """Close the trailing window (end of run / final snapshot)."""
        if self._highest >= 0 and self._highest in self.windows:
            self._close_through(self._highest)
            self._highest += 1  # re-observing the same ts opens a fresh view
            self._invalidate_cache()

    def _evict_old(self) -> None:
        while len(self.windows) > self.max_windows:
            oldest = next(iter(self.windows))
            window = self.windows.pop(oldest)
            if window is self._cache_window:
                self._invalidate_cache()
            self._fold(window)

    def _fold(self, window: RollupWindow) -> None:
        into = self.folded
        into.events += window.events
        into.copies += window.copies
        into.copy_bytes += window.copy_bytes
        for cause, nbytes in window.copy_bytes_by_cause.items():
            into.copy_bytes_by_cause[cause] = (
                into.copy_bytes_by_cause.get(cause, 0) + nbytes
            )
        into.copy_seconds += window.copy_seconds
        for cause, seconds in window.copy_seconds_by_cause.items():
            into.copy_seconds_by_cause[cause] = (
                into.copy_seconds_by_cause.get(cause, 0.0) + seconds
            )
        for cause, count in window.copies_by_cause.items():
            into.copies_by_cause[cause] = (
                into.copies_by_cause.get(cause, 0) + count
            )
        into.stalls += window.stalls
        into.stall_seconds += window.stall_seconds
        into.evictions += window.evictions
        into.prefetches += window.prefetches
        into.allocs += window.allocs
        into.alloc_bytes += window.alloc_bytes
        into.frees += window.frees
        into.free_bytes += window.free_bytes
        into.kernels += window.kernels
        into.kernel_seconds += window.kernel_seconds
        into.kernel_compute_seconds += window.kernel_compute_seconds
        into.kernel_memory_seconds += window.kernel_memory_seconds
        into.kernel_fixed_seconds += window.kernel_fixed_seconds
        into.gcs += window.gcs
        into.gc_seconds += window.gc_seconds
        into.oom_retries += window.oom_retries
        into.faults += window.faults
        into.recovery_steps += window.recovery_steps
        into.recoveries += window.recoveries
        into.copy_retries += window.copy_retries
        into.strikes += window.strikes
        into.quarantines += window.quarantines

    def recent(self, limit: int | None = None) -> list[RollupWindow]:
        """Retained windows in index order (most recent last)."""
        windows = list(self.windows.values())
        if limit is not None and len(windows) > limit:
            windows = windows[-limit:]
        return windows


# -- flight recorder -----------------------------------------------------------


class FlightRecorder:
    """A fixed-size ring of the most recent events: the run's black box.

    Appending is O(1) with no allocation beyond the slot write. Slots hold
    either full :class:`TraceEvent` records (the observe/replay path) or
    plain dicts (the monitor-tier ``note_*`` fast path appends compact
    pre-shaped records to avoid building events it would never retain). A
    dump writes a ``repro.flight`` JSONL document — header line (reason,
    virtual dump time, drop count) followed by the retained records in
    arrival order with sorted keys and compact separators (the same
    encoding as :func:`~repro.telemetry.export.jsonl_lines`), so a seeded
    rerun produces a byte-identical dump.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._ring: list[TraceEvent | dict | tuple | None] = [None] * capacity
        self._next = 0

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def append(self, event: "TraceEvent | dict | tuple") -> None:
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.total += 1

    def snapshot(self) -> list["TraceEvent | dict | tuple"]:
        """Retained records in arrival order (oldest first)."""
        if self.total < self.capacity:
            return [e for e in self._ring[: self._next] if e is not None]
        tail = self._ring[self._next:] + self._ring[: self._next]
        return [e for e in tail if e is not None]

    def dump(self, fp: IO[str], *, reason: str, ts: float) -> int:
        """Write the ring as a flight-record JSONL document; returns count."""
        import json

        events = self.snapshot()
        header = {
            "schema": "repro.flight",
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "ts": ts,
            "events": len(events),
            "dropped": self.total - len(events),
        }
        fp.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
        fp.write("\n")
        for entry in events:
            if isinstance(entry, tuple):
                doc = {"kind": entry[0], "ts": entry[1]}
                doc.update(zip(_RING_FIELDS[entry[0]], entry[2:]))
            elif isinstance(entry, dict):
                doc = entry
            else:
                doc = entry.to_json()
            fp.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
            fp.write("\n")
        return len(events)


# Field names for the monitor tier's compact ring records: the note_* fast
# path appends plain ``(kind, ts, *values)`` tuples (cheaper to build than
# dicts on the hot path); dump() re-keys them here so the JSONL document is
# indistinguishable from one built from kwargs.
_RING_FIELDS: dict[str, tuple[str, ...]] = {
    STALL: ("kernel", "seconds"),
    COPY_START: ("src", "dst", "nbytes", "seconds"),
    EVICT: ("obj", "nbytes"),
    PREFETCH: ("obj", "nbytes"),
    GC: ("seconds",),
    OOM_RETRY: ("obj",),
    COPY_RETRY: ("reason",),
    FAULT: ("fault",),
    RECOVERY_STEP: ("step", "tenant"),
    RECOVERY: ("step",),
    POLICY_STRIKE: ("op", "tenant"),
    QUARANTINE: ("policy",),
    DETACH: ("subject",),
    RESIZE: ("subject",),
    SNAPSHOT: ("subject",),
    RESTORE: ("subject",),
}

# Elastic-event kind -> totals key (note_elastic / observe intake).
_ELASTIC_TOTALS = {
    DETACH: "detaches",
    RESIZE: "resizes",
    SNAPSHOT: "snapshots",
    RESTORE: "restores",
}


# -- alert rules ---------------------------------------------------------------


@dataclass(frozen=True)
class AlertRule:
    """One declarative per-window health check with hysteresis.

    ``metric`` names a selector the monitor computes per closed window (see
    :data:`METRIC_SELECTORS`); selectors may yield several labelled values
    (one per device or tenant), each tracked independently. The rule trips
    after ``trip_windows`` *consecutive* breaching windows and clears after
    ``clear_windows`` consecutive clean ones — a single noisy window never
    flaps an alert.
    """

    name: str
    metric: str
    threshold: float
    severity: str = "warning"
    trip_windows: int = 2
    clear_windows: int = 2
    description: str = ""


class AlertState:
    """Hysteresis bookkeeping for one (rule, label) pair."""

    __slots__ = ("rule", "label", "active", "breaches", "clears",
                 "value", "since", "fired")

    def __init__(self, rule: AlertRule, label: str) -> None:
        self.rule = rule
        self.label = label
        self.active = False
        self.breaches = 0
        self.clears = 0
        self.value = 0.0
        self.since = 0.0
        self.fired = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule.name,
            "label": self.label,
            "metric": self.rule.metric,
            "threshold": self.rule.threshold,
            "severity": self.rule.severity,
            "value": self.value,
            "since": self.since,
            "fired": self.fired,
        }


# Selector registry: metric name -> callable(monitor, window) -> {label: value}.
# Selectors that need bound context (capacities, quotas) yield nothing until
# the context is attached, so the rules are safe to leave in the default set.

def _sel_stall_fraction(monitor: "RuntimeMonitor", window: RollupWindow):
    return {"": window.stall_fraction}


def _sel_ping_pong_rate(monitor: "RuntimeMonitor", window: RollupWindow):
    return {"": window.ping_pong_rate}


def _sel_occupancy_fraction(monitor: "RuntimeMonitor", window: RollupWindow):
    out = {}
    for device, capacity in monitor.capacities.items():
        if capacity > 0:
            out[device] = monitor.occupancy.get(device, 0) / capacity
    return out


def _sel_quota_fraction(monitor: "RuntimeMonitor", window: RollupWindow):
    out = {}
    for (tenant, device), limit in monitor.quotas.items():
        if limit > 0:
            used = window.tenant_used.get(f"{tenant}/{device}", 0)
            out[f"{tenant}/{device}"] = used / limit
    return out


def _sel_fault_rate(monitor: "RuntimeMonitor", window: RollupWindow):
    return {"": window.faults / window.duration if window.duration else 0.0}


METRIC_SELECTORS: dict[
    str, Callable[["RuntimeMonitor", RollupWindow], Mapping[str, float]]
] = {
    "stall_fraction": _sel_stall_fraction,
    "ping_pong_rate": _sel_ping_pong_rate,
    "occupancy_fraction": _sel_occupancy_fraction,
    "quota_fraction": _sel_quota_fraction,
    "fault_rate": _sel_fault_rate,
}

DEFAULT_ALERT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        name="high-stall",
        metric="stall_fraction",
        threshold=0.5,
        severity="warning",
        description="over half the window spent stalled on data movement",
    ),
    AlertRule(
        name="ping-pong",
        metric="ping_pong_rate",
        threshold=8.0,
        severity="warning",
        description="sustained evict+prefetch churn (thrash)",
    ),
    AlertRule(
        name="near-capacity",
        metric="occupancy_fraction",
        threshold=0.95,
        severity="critical",
        trip_windows=3,
        description="device heap above 95% occupancy",
    ),
    AlertRule(
        name="quota-pressure",
        metric="quota_fraction",
        threshold=0.9,
        severity="warning",
        description="tenant within 10% of its device quota",
    ),
)

_SEVERITY_RANK = {"info": 0, "warning": 1, "critical": 2}


# -- health snapshot -----------------------------------------------------------


@dataclass
class HealthSnapshot:
    """Point-in-time health: totals, occupancy, latency sketches, alerts."""

    ts: float
    events_seen: int
    windows_closed: int
    status: str
    totals: dict[str, Any]
    occupancy: dict[str, dict[str, int]]
    tenants: dict[str, dict[str, int]]
    latencies: dict[str, dict[str, float]]
    active_alerts: list[dict[str, Any]]
    alerts_fired: int
    flight_dumps: list[str]
    recent_windows: list[dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "ts": self.ts,
            "events_seen": self.events_seen,
            "windows_closed": self.windows_closed,
            "status": self.status,
            "totals": self.totals,
            "occupancy": self.occupancy,
            "tenants": self.tenants,
            "latencies": self.latencies,
            "active_alerts": self.active_alerts,
            "alerts_fired": self.alerts_fired,
            "flight_dumps": self.flight_dumps,
            "recent_windows": self.recent_windows,
        }

    def render(self) -> str:
        """Human-readable dashboard block (the `repro monitor` body)."""
        lines = [
            f"health: {self.status.upper()}  t={self.ts:.3f}s  "
            f"events={self.events_seen}  windows={self.windows_closed}  "
            f"alerts_fired={self.alerts_fired}",
        ]
        totals = self.totals
        lines.append(
            f"  movement: {totals['copies']} copies / "
            f"{_fmt_bytes(totals['copy_bytes'])}   "
            f"stall {totals['stall_seconds']:.3f}s ({totals['stalls']}x)   "
            f"evict {totals['evictions']} / prefetch {totals['prefetches']}"
        )
        lines.append(
            f"  robustness: faults {totals['faults']}  "
            f"recoveries {totals['recoveries']}  "
            f"copy_retries {totals['copy_retries']}  "
            f"strikes {totals['strikes']}  "
            f"quarantines {totals['quarantines']}"
        )
        if self.occupancy:
            parts = []
            for device, occ in sorted(self.occupancy.items()):
                used = _fmt_bytes(occ["used"])
                cap = occ.get("capacity", 0)
                if cap:
                    parts.append(
                        f"{device} {used}/{_fmt_bytes(cap)} "
                        f"({occ['used'] / cap:.0%})"
                    )
                else:
                    parts.append(f"{device} {used}")
            lines.append("  occupancy: " + "   ".join(parts))
        for tenant, usage in sorted(self.tenants.items()):
            limit = usage.get("limit", 0)
            suffix = f" / {_fmt_bytes(limit)}" if limit else ""
            lines.append(
                f"  tenant {tenant}: {_fmt_bytes(usage['used'])}{suffix}"
            )
        for name, summary in sorted(self.latencies.items()):
            if not summary["count"]:
                continue
            lines.append(
                f"  {name}: n={int(summary['count'])}  "
                f"p50={summary['p50'] * 1e3:.3f}ms  "
                f"p95={summary['p95'] * 1e3:.3f}ms  "
                f"p99={summary['p99'] * 1e3:.3f}ms"
            )
        if self.active_alerts:
            for alert in self.active_alerts:
                label = f" [{alert['label']}]" if alert["label"] else ""
                lines.append(
                    f"  ALERT {alert['severity'].upper()} "
                    f"{alert['rule']}{label}: "
                    f"{alert['metric']}={alert['value']:.3f} "
                    f"> {alert['threshold']} (since t={alert['since']:.3f}s)"
                )
        else:
            lines.append("  alerts: none active")
        for path in self.flight_dumps:
            lines.append(f"  flight dump: {path}")
        return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - loop always returns


# -- the monitor ---------------------------------------------------------------


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning for :class:`RuntimeMonitor`; the defaults suit the repo's
    experiment scales (windows of 0.25 virtual seconds, a few hundred
    retained) and bound memory regardless of run length."""

    window_seconds: float = 0.25
    max_windows: int = 240
    ring_capacity: int = 512
    sketch_relative_error: float = 0.005
    dump_dir: str | None = None
    max_dumps: int = 8
    rules: tuple[AlertRule, ...] = DEFAULT_ALERT_RULES


class RuntimeMonitor:
    """Consumes trace events; maintains rollups, sketches, ring, alerts.

    Pure observation with bounded memory: safe to leave attached to any
    run. Feed it live through :class:`MonitorTracer` or offline by calling
    :meth:`observe` over a replayed JSONL stream — both paths produce
    identical state for the same event sequence.
    """

    def __init__(self, config: MonitorConfig | None = None) -> None:
        self.config = config or MonitorConfig()
        cfg = self.config
        self.rollups = RollupAggregator(
            cfg.window_seconds, cfg.max_windows, on_close=self._on_close
        )
        self.ring = FlightRecorder(cfg.ring_capacity)
        self.kernel_latency = QuantileSketch(cfg.sketch_relative_error)
        self.stall_latency = QuantileSketch(cfg.sketch_relative_error)
        self.copy_latency = QuantileSketch(cfg.sketch_relative_error)
        self.events_seen = 0
        self.last_ts = 0.0
        # Live aggregates (exact, maintained incrementally from events).
        self.occupancy: dict[str, int] = {}
        self.inflight_copy_bytes = 0
        # The current copy-cause bucket for note_copy (monitor tier only):
        # eviction sites set it to "evict" around evict_object() — the
        # cheap stand-in for the full tier's attribution scopes.
        self.copy_cause = "unattributed"
        self._inflight: dict[int, tuple[float, int]] = {}  # seq -> (ts, nbytes)
        self.totals: dict[str, Any] = {
            "copies": 0, "copy_bytes": 0, "copy_seconds": 0.0,
            "stalls": 0, "stall_seconds": 0.0,
            "evictions": 0, "prefetches": 0, "allocs": 0, "frees": 0,
            "kernels": 0, "kernel_seconds": 0.0,
            "kernel_compute_seconds": 0.0, "kernel_memory_seconds": 0.0,
            "kernel_fixed_seconds": 0.0,
            "gcs": 0, "gc_seconds": 0.0, "oom_retries": 0,
            "faults": 0, "recovery_steps": 0, "recoveries": 0,
            "copy_retries": 0, "strikes": 0, "quarantines": 0,
            "detaches": 0, "resizes": 0, "snapshots": 0, "restores": 0,
        }
        self.copies_by_cause: dict[str, int] = {}
        self.copy_seconds_by_cause: dict[str, float] = {}
        self.recovery_steps_by_rung: dict[str, int] = {}
        self.recoveries_by_step: dict[str, int] = {}
        # Per-tenant usage, estimated from stream-tagged alloc/free (see
        # bind_usage_probe for the exact live path). Keyed "tenant/device".
        self._tenant_used: dict[str, int] = {}
        self._region_tenant: dict[tuple[str, int], tuple[str, int]] = {}
        # Bound context (optional): device capacities, tenant quotas, and an
        # exact usage probe (the live DataManager's accounting).
        self.capacities: dict[str, int] = {}
        self.quotas: dict[tuple[str, str], int] = {}
        self._usage_probe: Callable[[], Mapping[tuple[str, str], int]] | None
        self._usage_probe = None
        # Alerting.
        self.rules: tuple[AlertRule, ...] = cfg.rules
        self._alert_states: dict[tuple[str, str], AlertState] = {}
        self.alerts_fired = 0
        self.alert_events: list[TraceEvent] = []
        self._alert_sink: Callable[[TraceEvent], None] | None = None
        # Flight dumps.
        self.dumps: list[str] = []
        self._dump_reasons: set[str] = set()
        self._dump_seq = 0

    # -- context binding -----------------------------------------------------

    def bind_capacities(self, capacities: Mapping[str, int]) -> None:
        """Attach device capacities (enables occupancy-fraction alerts).

        The mapping is held by reference and read at window close, so a
        live table (or one updated later) stays current.
        """
        self.capacities = capacities  # type: ignore[assignment]

    def bind_quotas(self, quotas: Mapping[tuple[str, str], int]) -> None:
        """Attach (tenant, device) -> byte quotas (enables quota alerts).

        Held by reference like :meth:`bind_capacities` — the runtime passes
        the manager's own quota table, so quotas set *after* attachment
        (tenants attach to a built runtime) are still seen.
        """
        self.quotas = quotas  # type: ignore[assignment]

    def bind_usage_probe(
        self, probe: Callable[[], Mapping[tuple[str, str], int]]
    ) -> None:
        """Attach an exact per-tenant usage source (the live manager).

        Offline replay falls back to the stream-tag estimate, which is exact
        until a defrag relocates regions (moves are not re-announced as
        alloc/free); live runs should always bind the probe.
        """
        self._usage_probe = probe

    def set_alert_sink(self, sink: Callable[[TraceEvent], None] | None) -> None:
        """Where emitted alert events go besides :attr:`alert_events`."""
        self._alert_sink = sink

    # -- event intake --------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Fold one event into every monitor structure. Hot path."""
        self.events_seen += 1
        ts = event.ts
        if ts > self.last_ts:
            self.last_ts = ts
        self.ring.append(event)
        window = self.rollups.window_for(ts)
        window.events += 1
        kind = event.kind
        totals = self.totals
        args = event.args
        if kind == KERNEL_END:
            seconds = float(args.get("seconds", 0.0))
            compute = float(args.get("compute", 0.0))
            memory = float(args.get("memory", 0.0))
            fixed = float(args.get("fixed", 0.0))
            window.kernels += 1
            window.kernel_seconds += seconds
            window.kernel_compute_seconds += compute
            window.kernel_memory_seconds += memory
            window.kernel_fixed_seconds += fixed
            totals["kernels"] += 1
            totals["kernel_seconds"] += seconds
            totals["kernel_compute_seconds"] += compute
            totals["kernel_memory_seconds"] += memory
            totals["kernel_fixed_seconds"] += fixed
            self.kernel_latency.observe(seconds)
        elif kind == ALLOC:
            nbytes = int(args.get("nbytes", 0))
            device = args.get("device", "?")
            window.allocs += 1
            window.alloc_bytes += nbytes
            totals["allocs"] += 1
            self.occupancy[device] = self.occupancy.get(device, 0) + nbytes
            if event.stream:
                offset = args.get("offset")
                if offset is not None:
                    self._region_tenant[(device, int(offset))] = (
                        event.stream, nbytes,
                    )
                key = f"{event.stream}/{device}"
                self._tenant_used[key] = self._tenant_used.get(key, 0) + nbytes
        elif kind == FREE:
            nbytes = int(args.get("nbytes", 0))
            device = args.get("device", "?")
            window.frees += 1
            window.free_bytes += nbytes
            totals["frees"] += 1
            self.occupancy[device] = self.occupancy.get(device, 0) - nbytes
            offset = args.get("offset")
            owner = None
            if offset is not None:
                owner = self._region_tenant.pop((device, int(offset)), None)
            tenant = owner[0] if owner else event.stream
            if tenant:
                key = f"{tenant}/{device}"
                remaining = self._tenant_used.get(key, 0) - nbytes
                if remaining > 0:
                    self._tenant_used[key] = remaining
                else:
                    self._tenant_used.pop(key, None)
        elif kind == COPY_START:
            nbytes = int(args.get("nbytes", 0))
            seconds = float(args.get("seconds", 0.0))
            window.copies += 1
            window.copy_bytes += nbytes
            window.copy_seconds += seconds
            # Bytes attribute to the *root* cause (who started the cascade);
            # seconds/counts attribute to the *innermost* cause (what the
            # copy mechanically was — an eviction nested under a placement
            # is still eviction work). The innermost keying also matches the
            # cheap tier's ``copy_cause`` string, so the bottleneck taxonomy
            # reads the same mechanism mix from either tier.
            cause = cause_kind(event.root)
            window.copy_bytes_by_cause[cause] = (
                window.copy_bytes_by_cause.get(cause, 0) + nbytes
            )
            mechanism = cause_kind(event.cause)
            window.copy_seconds_by_cause[mechanism] = (
                window.copy_seconds_by_cause.get(mechanism, 0.0) + seconds
            )
            window.copies_by_cause[mechanism] = (
                window.copies_by_cause.get(mechanism, 0) + 1
            )
            totals["copies"] += 1
            totals["copy_bytes"] += nbytes
            totals["copy_seconds"] += seconds
            self.copies_by_cause[mechanism] = (
                self.copies_by_cause.get(mechanism, 0) + 1
            )
            self.copy_seconds_by_cause[mechanism] = (
                self.copy_seconds_by_cause.get(mechanism, 0.0) + seconds
            )
            self.inflight_copy_bytes += nbytes
            seq = args.get("seq")
            if seq is not None:
                self._inflight[int(seq)] = (ts, nbytes)
        elif kind == COPY_END:
            seq = args.get("seq")
            started = None
            if seq is not None:
                started = self._inflight.pop(int(seq), None)
            if started is not None:
                start_ts, nbytes = started
                self.inflight_copy_bytes -= nbytes
                self.copy_latency.observe(ts - start_ts)
        elif kind == STALL:
            seconds = float(args.get("seconds", 0.0))
            window.stalls += 1
            window.stall_seconds += seconds
            totals["stalls"] += 1
            totals["stall_seconds"] += seconds
            self.stall_latency.observe(seconds)
        elif kind == EVICT:
            window.evictions += 1
            totals["evictions"] += 1
        elif kind == PREFETCH:
            window.prefetches += 1
            totals["prefetches"] += 1
        elif kind == GC:
            seconds = float(args.get("seconds", 0.0))
            window.gcs += 1
            window.gc_seconds += seconds
            totals["gcs"] += 1
            totals["gc_seconds"] += seconds
        elif kind == OOM_RETRY:
            window.oom_retries += 1
            totals["oom_retries"] += 1
        elif kind == FAULT:
            window.faults += 1
            totals["faults"] += 1
            label = args.get("fault") or args.get("site") or "?"
            self._maybe_dump(f"fault:{label}", ts)
        elif kind == RECOVERY_STEP:
            step = str(args.get("step", "?"))
            window.recovery_steps += 1
            totals["recovery_steps"] += 1
            self.recovery_steps_by_rung[step] = (
                self.recovery_steps_by_rung.get(step, 0) + 1
            )
            if step in _ESCALATION_STEPS:
                self._maybe_dump(f"recovery:{step}", ts)
        elif kind == RECOVERY:
            window.recoveries += 1
            totals["recoveries"] += 1
            step = str(args.get("step", "?"))
            self.recoveries_by_step[step] = (
                self.recoveries_by_step.get(step, 0) + 1
            )
        elif kind == COPY_RETRY:
            window.copy_retries += 1
            totals["copy_retries"] += 1
        elif kind == POLICY_STRIKE:
            window.strikes += 1
            totals["strikes"] += 1
            self._maybe_dump("policy_strike", ts)
        elif kind == QUARANTINE:
            window.quarantines += 1
            totals["quarantines"] += 1
            self._maybe_dump("quarantine", ts)
        elif kind == DETACH:
            totals["detaches"] += 1
            self._maybe_dump(f"detach:{args.get('tenant', '?')}", ts)
        elif kind == RESIZE:
            totals["resizes"] += 1
            self._maybe_dump(f"resize:{args.get('device', '?')}", ts)
        elif kind == SNAPSHOT:
            totals["snapshots"] += 1
        elif kind == RESTORE:
            totals["restores"] += 1
        # Other kinds (hint/place/decision/...) only count toward
        # window.events and ride in the flight ring.

    def observe_all(self, events: Iterable[TraceEvent]) -> "RuntimeMonitor":
        """Replay a whole event stream (offline mode); returns self."""
        for event in events:
            self.observe(event)
        return self

    def finish(self) -> None:
        """Close the trailing window so its stats and alerts are visible."""
        self.rollups.finish()

    # -- monitor-tier fast intake (note_*) -----------------------------------
    #
    # The inlined twins of observe()'s per-kind branches, called straight
    # from instrumented sites through the ``elif tracer.monitoring:`` guard:
    # positional arguments only, no kwargs dict, no TraceEvent. Each method
    # must keep the same arithmetic as its observe() branch for totals,
    # occupancy, and latency sketches, so offline replay of a recorded
    # stream agrees with live monitoring on those (the CLI test suite holds
    # the two paths equal there; per-window event counts and copy-cause
    # attribution legitimately differ, because the cheap tier neither sees
    # the skipped event kinds nor opens attribution scopes). Movement and
    # robustness notes also drop a compact ``(kind, ts, *values)`` tuple
    # into the flight ring (see ``_RING_FIELDS``) so the black box stays
    # useful in the cheap tier; alloc/free and kernel notes skip the ring
    # (pure volume, no forensic value).
    #
    # Every note opens with the same hand-inlined window lookup — two float
    # comparisons against the aggregator's cached current window — because
    # at ~50k notes per benchmark run even one extra call frame per note is
    # measurable against the <=5% overhead budget (docs/observability.md).

    def note_kernel(
        self,
        ts: float,
        seconds: float,
        compute: float = 0.0,
        memory: float = 0.0,
        fixed: float = 0.0,
    ) -> None:
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= ts < r._cache_hi
            else r.window_for(ts)
        )
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window.events += 1
        window.kernels += 1
        window.kernel_seconds += seconds
        window.kernel_compute_seconds += compute
        window.kernel_memory_seconds += memory
        window.kernel_fixed_seconds += fixed
        totals = self.totals
        totals["kernels"] += 1
        totals["kernel_seconds"] += seconds
        totals["kernel_compute_seconds"] += compute
        totals["kernel_memory_seconds"] += memory
        totals["kernel_fixed_seconds"] += fixed
        self.kernel_latency.observe(seconds)

    def note_stall(self, ts: float, seconds: float, kernel: str = "") -> None:
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= ts < r._cache_hi
            else r.window_for(ts)
        )
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window.events += 1
        window.stalls += 1
        window.stall_seconds += seconds
        totals = self.totals
        totals["stalls"] += 1
        totals["stall_seconds"] += seconds
        self.stall_latency.observe(seconds)
        self.ring.append((STALL, ts, kernel, seconds))

    def note_copy(
        self,
        start_ts: float,
        end_ts: float,
        nbytes: int,
        src: str,
        dst: str,
        seconds: float | None = None,
    ) -> None:
        # Mirrors the observe() pairing order exactly: the start window is
        # touched, the copy goes in flight, then the end window is touched
        # (possibly closing the start window with this copy still counted
        # in-flight), then the copy lands. The cause comes from
        # ``copy_cause`` — a plain string the eviction sites set around
        # evict_object() in place of the full tier's tracer scopes.
        # ``seconds`` is the exact copy duration when the caller has it;
        # ``end_ts - start_ts`` recomputes it with float rounding, which
        # would break note/observe totals parity.
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= start_ts < r._cache_hi
            else r.window_for(start_ts)
        )
        self.events_seen += 2
        if seconds is None:
            seconds = end_ts - start_ts
        window.events += 1
        window.copies += 1
        window.copy_bytes += nbytes
        window.copy_seconds += seconds
        cause = self.copy_cause
        by_cause = window.copy_bytes_by_cause
        by_cause[cause] = by_cause.get(cause, 0) + nbytes
        by_seconds = window.copy_seconds_by_cause
        by_seconds[cause] = by_seconds.get(cause, 0.0) + seconds
        by_count = window.copies_by_cause
        by_count[cause] = by_count.get(cause, 0) + 1
        totals = self.totals
        totals["copies"] += 1
        totals["copy_bytes"] += nbytes
        totals["copy_seconds"] += seconds
        self.copies_by_cause[cause] = (
            self.copies_by_cause.get(cause, 0) + 1
        )
        self.copy_seconds_by_cause[cause] = (
            self.copy_seconds_by_cause.get(cause, 0.0) + seconds
        )
        self.inflight_copy_bytes += nbytes
        end_window = (
            r._cache_window if r._cache_lo <= end_ts < r._cache_hi
            else r.window_for(end_ts)
        )
        end_window.events += 1
        if end_ts > self.last_ts:
            self.last_ts = end_ts
        self.inflight_copy_bytes -= nbytes
        self.copy_latency.observe(end_ts - start_ts)
        self.ring.append(
            (COPY_START, start_ts, src, dst, nbytes, end_ts - start_ts)
        )

    def note_alloc(
        self, ts: float, device: str, nbytes: int, offset: int, stream: str
    ) -> None:
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= ts < r._cache_hi
            else r.window_for(ts)
        )
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window.events += 1
        window.allocs += 1
        window.alloc_bytes += nbytes
        self.totals["allocs"] += 1
        occupancy = self.occupancy
        occupancy[device] = occupancy.get(device, 0) + nbytes
        if stream:
            self._region_tenant[(device, offset)] = (stream, nbytes)
            key = f"{stream}/{device}"
            self._tenant_used[key] = self._tenant_used.get(key, 0) + nbytes

    def note_free(
        self, ts: float, device: str, nbytes: int, offset: int, stream: str
    ) -> None:
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= ts < r._cache_hi
            else r.window_for(ts)
        )
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window.events += 1
        window.frees += 1
        window.free_bytes += nbytes
        self.totals["frees"] += 1
        occupancy = self.occupancy
        occupancy[device] = occupancy.get(device, 0) - nbytes
        if stream or self._region_tenant:
            owner = self._region_tenant.pop((device, offset), None)
            tenant = owner[0] if owner else stream
            if tenant:
                key = f"{tenant}/{device}"
                remaining = self._tenant_used.get(key, 0) - nbytes
                if remaining > 0:
                    self._tenant_used[key] = remaining
                else:
                    self._tenant_used.pop(key, None)

    def note_evict(self, ts: float, obj: str, nbytes: int) -> None:
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= ts < r._cache_hi
            else r.window_for(ts)
        )
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window.events += 1
        window.evictions += 1
        self.totals["evictions"] += 1
        self.ring.append((EVICT, ts, obj, nbytes))

    def note_prefetch(self, ts: float, obj: str, nbytes: int) -> None:
        r = self.rollups
        window = (
            r._cache_window if r._cache_lo <= ts < r._cache_hi
            else r.window_for(ts)
        )
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window.events += 1
        window.prefetches += 1
        self.totals["prefetches"] += 1
        self.ring.append((PREFETCH, ts, obj, nbytes))

    def _note_slow(self, ts: float) -> RollupWindow:
        """Shared intake for the rare robustness notes (not hot)."""
        self.events_seen += 1
        if ts > self.last_ts:
            self.last_ts = ts
        window = self.rollups.window_for(ts)
        window.events += 1
        return window

    def note_gc(self, ts: float, seconds: float) -> None:
        window = self._note_slow(ts)
        window.gcs += 1
        window.gc_seconds += seconds
        self.totals["gcs"] += 1
        self.totals["gc_seconds"] += seconds
        self.ring.append((GC, ts, seconds))

    def note_oom_retry(self, ts: float, obj: str = "") -> None:
        window = self._note_slow(ts)
        window.oom_retries += 1
        self.totals["oom_retries"] += 1
        self.ring.append((OOM_RETRY, ts, obj))

    def note_copy_retry(self, ts: float, reason: str = "") -> None:
        window = self._note_slow(ts)
        window.copy_retries += 1
        self.totals["copy_retries"] += 1
        self.ring.append((COPY_RETRY, ts, reason))

    def note_fault(self, ts: float, label: str) -> None:
        window = self._note_slow(ts)
        window.faults += 1
        self.totals["faults"] += 1
        self.ring.append((FAULT, ts, label))
        self._maybe_dump(f"fault:{label}", ts)

    def note_recovery_step(self, ts: float, step: str, tenant: str = "") -> None:
        window = self._note_slow(ts)
        window.recovery_steps += 1
        self.totals["recovery_steps"] += 1
        self.recovery_steps_by_rung[step] = (
            self.recovery_steps_by_rung.get(step, 0) + 1
        )
        self.ring.append((RECOVERY_STEP, ts, step, tenant))
        if step in _ESCALATION_STEPS:
            self._maybe_dump(f"recovery:{step}", ts)

    def note_recovery(self, ts: float, step: str) -> None:
        window = self._note_slow(ts)
        window.recoveries += 1
        self.totals["recoveries"] += 1
        self.recoveries_by_step[step] = (
            self.recoveries_by_step.get(step, 0) + 1
        )
        self.ring.append((RECOVERY, ts, step))

    def note_strike(self, ts: float, op: str = "", tenant: str = "") -> None:
        window = self._note_slow(ts)
        window.strikes += 1
        self.totals["strikes"] += 1
        self.ring.append((POLICY_STRIKE, ts, op, tenant))
        self._maybe_dump("policy_strike", ts)

    def note_quarantine(self, ts: float, policy: str = "") -> None:
        window = self._note_slow(ts)
        window.quarantines += 1
        self.totals["quarantines"] += 1
        self.ring.append((QUARANTINE, ts, policy))
        self._maybe_dump("quarantine", ts)

    def note_elastic(self, kind: str, ts: float, subject: str) -> None:
        """Monitor-tier intake for rare elastic events (detach/resize).

        ``kind`` is ``"detach"``, ``"resize"``, ``"snapshot"`` or
        ``"restore"``; ``subject`` is the tenant, device, or checkpoint
        label. Counted in totals and dropped into the flight ring —
        elastic reconfiguration is exactly the context a post-mortem needs.
        """
        self._note_slow(ts)
        key = _ELASTIC_TOTALS[kind]
        self.totals[key] = self.totals.get(key, 0) + 1
        self.ring.append((kind, ts, subject))
        self._maybe_dump(f"{kind}:{subject}", ts)

    def _current_usage(self) -> Mapping[str, int]:
        """Per-tenant usage, "tenant/device"-keyed: exact probe when bound
        and populated (quota accounting only charges while quotas exist),
        else the stream-tag estimate."""
        if self._usage_probe is not None:
            probed = self._usage_probe()
            if probed:
                return {
                    f"{tenant}/{device}": used
                    for (tenant, device), used in probed.items()
                }
        return self._tenant_used

    # -- window close: snapshot live state + evaluate alerts -----------------

    def _on_close(self, window: RollupWindow) -> None:
        window.occupancy = dict(self.occupancy)
        window.inflight_copy_bytes = self.inflight_copy_bytes
        window.tenant_used = dict(self._current_usage())
        for rule in self.rules:
            selector = METRIC_SELECTORS.get(rule.metric)
            if selector is None:
                continue
            for label, value in selector(self, window).items():
                self._evaluate(rule, label, value, window)

    def _evaluate(
        self, rule: AlertRule, label: str, value: float, window: RollupWindow
    ) -> None:
        key = (rule.name, label)
        state = self._alert_states.get(key)
        if state is None:
            state = self._alert_states[key] = AlertState(rule, label)
        state.value = value
        if value > rule.threshold:
            state.breaches += 1
            state.clears = 0
            if not state.active and state.breaches >= rule.trip_windows:
                state.active = True
                state.since = window.end
                state.fired += 1
                self.alerts_fired += 1
                self._record_alert(rule, label, value, window, "firing")
        else:
            state.clears += 1
            state.breaches = 0
            if state.active and state.clears >= rule.clear_windows:
                state.active = False
                self._record_alert(rule, label, value, window, "resolved")

    def _record_alert(
        self,
        rule: AlertRule,
        label: str,
        value: float,
        window: RollupWindow,
        status: str,
    ) -> None:
        event = TraceEvent(
            ts=window.end,
            kind=ALERT,
            args={
                "rule": rule.name,
                "label": label,
                "metric": rule.metric,
                "value": round(value, 6),
                "threshold": rule.threshold,
                "severity": rule.severity,
                "status": status,
                "window": window.index,
            },
        )
        self.alert_events.append(event)
        self.ring.append(event)
        if self._alert_sink is not None:
            self._alert_sink(event)

    def active_alerts(self) -> list[AlertState]:
        """Currently-firing alerts, stable order (rule name, label)."""
        return sorted(
            (s for s in self._alert_states.values() if s.active),
            key=lambda s: (s.rule.name, s.label),
        )

    # -- flight dumps --------------------------------------------------------

    def record_escalation(self, reason: str, ts: float | None = None) -> None:
        """External dump trigger: something outside the event stream failed.

        The scheduler calls this when a stream aborts and harnesses may call
        it on contract violations — same dedupe/cap rules as the automatic
        in-stream triggers, so it is safe to call unconditionally.
        """
        self._maybe_dump(reason, self.last_ts if ts is None else ts)

    def _maybe_dump(self, reason: str, ts: float) -> None:
        # One automatic dump per distinct reason, capped: deterministic and
        # bounded even when a chaos plan fires the same fault repeatedly.
        if self.config.dump_dir is None:
            return
        if reason in self._dump_reasons:
            return
        if len(self.dumps) >= self.config.max_dumps:
            return
        self._dump_reasons.add(reason)
        self.dump_flight(reason=reason, ts=ts)

    def dump_flight(
        self, *, reason: str, ts: float | None = None, path: str | None = None
    ) -> str | None:
        """Write the flight ring to JSONL; returns the path (None if nowhere).

        ``path=None`` derives ``flight-<seq>-<reason>.jsonl`` under the
        configured ``dump_dir``; the sequence number and slug are functions
        of the event stream alone, so seeded reruns dump identical files to
        identical names.
        """
        import os

        if ts is None:
            ts = self.last_ts
        if path is None:
            if self.config.dump_dir is None:
                return None
            slug = "".join(
                ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
            ).strip("-") or "dump"
            path = os.path.join(
                self.config.dump_dir,
                f"flight-{self._dump_seq:03d}-{slug}.jsonl",
            )
        self._dump_seq += 1
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fp:
            self.ring.dump(fp, reason=reason, ts=ts)
        self.dumps.append(path)
        return path

    # -- reporting -----------------------------------------------------------

    def latency_summaries(self) -> dict[str, dict[str, float]]:
        return {
            "kernel_seconds": self.kernel_latency.summary(),
            "stall_seconds": self.stall_latency.summary(),
            "copy_seconds": self.copy_latency.summary(),
        }

    def snapshot(self, *, recent_windows: int = 0) -> HealthSnapshot:
        """Current health; ``recent_windows`` > 0 inlines the latest rollups."""
        active = self.active_alerts()
        status = "ok"
        rank = -1
        for state in active:
            severity_rank = _SEVERITY_RANK.get(state.rule.severity, 1)
            if severity_rank > rank:
                rank = severity_rank
                status = state.rule.severity
        occupancy = {
            device: {
                "used": used,
                "capacity": self.capacities.get(device, 0),
            }
            for device, used in sorted(self.occupancy.items())
        }
        tenants: dict[str, dict[str, int]] = {}
        for key, used in sorted(self._current_usage().items()):
            tenant, _, device = key.partition("/")
            tenants[key] = {
                "used": used,
                "limit": self.quotas.get((tenant, device), 0),
            }
        recent = (
            [w.to_json() for w in self.rollups.recent(recent_windows)]
            if recent_windows
            else []
        )
        return HealthSnapshot(
            ts=self.last_ts,
            events_seen=self.events_seen,
            windows_closed=self.rollups.windows_closed,
            status=status,
            totals=dict(self.totals),
            occupancy=occupancy,
            tenants=tenants,
            latencies=self.latency_summaries(),
            active_alerts=[s.to_json() for s in active],
            alerts_fired=self.alerts_fired,
            flight_dumps=list(self.dumps),
            recent_windows=recent,
        )

    def counter_timelines(self) -> list[Timeline]:
        """Per-device occupancy and in-flight copy bytes as counter series.

        Sampled at window-close boundaries from the retained rollups — the
        Chrome-trace exporter renders these as Perfetto counter tracks next
        to the kernel lanes (the satellite-2 view).
        """
        windows = self.rollups.recent()
        devices = sorted(
            {device for w in windows for device in w.occupancy}
        )
        out: list[Timeline] = []
        for device in devices:
            series = Timeline(f"monitor.occupancy.{device}")
            for window in windows:
                if window.occupancy or window.events:
                    series.record(
                        window.end, float(window.occupancy.get(device, 0))
                    )
            if len(series):
                out.append(series)
        inflight = Timeline("monitor.copy_inflight")
        for window in windows:
            if window.events:
                inflight.record(window.end, float(window.inflight_copy_bytes))
        if len(inflight):
            out.append(inflight)
        return out


# -- tracer adapter ------------------------------------------------------------


class MonitorTracer(Tracer):
    """A :class:`Tracer` that streams events into a :class:`RuntimeMonitor`.

    Two tiers share this class:

    * ``keep_events=True`` — full tracing *plus* live monitoring (the
      profile/chaos configuration): ``enabled`` stays True, every emit site
      runs, every event is retained *and* folded into the monitor.
    * ``keep_events=False`` (the default, the "monitor tier") — the cheap
      always-on configuration. The tracer reports ``enabled=False`` so
      every full-trace emit site keeps its untraced fast path, and sets
      ``monitoring=True`` so the sites the monitor cares about call the
      ``RuntimeMonitor.note_*`` fast intake directly (no kwargs dict, no
      :class:`TraceEvent`). Nothing is retained, and both ``hint()`` and
      ``scope()`` degrade to a shared no-op scope — per-operand hint and
      attribution scopes were the largest costs of the tier, and the only
      attribution the monitor still wants (copy cause) travels through
      :attr:`RuntimeMonitor.copy_cause` instead.

    Either way the monitor is pure observation — it never advances the
    clock — so results are bit-identical with monitoring on or off.
    """

    monitoring = True

    def __init__(
        self,
        clock: "SimClock",
        monitor: RuntimeMonitor | None = None,
        *,
        keep_events: bool = False,
    ) -> None:
        super().__init__(clock)
        self.monitor = monitor if monitor is not None else RuntimeMonitor()
        self.keep_events = keep_events
        # Instance attribute (shadowing the class default) so the hot-site
        # ``tracer.monitoring`` check hits the instance dict directly.
        self.monitoring = True
        if keep_events:
            self.monitor.set_alert_sink(self.events.append)
        else:
            self.enabled = False

    def hint(self, kind: str, subject: object):
        if self.keep_events:
            return super().hint(kind, subject)
        return _NULL_SCOPE

    def scope(self, kind: str, subject: object = ""):
        if self.keep_events:
            return super().scope(kind, subject)
        return _NULL_SCOPE

    def emit(self, kind: str, **args: Any) -> TraceEvent:
        scopes = self._scopes
        if scopes:
            cause = scopes[-1][0]
            root, root_ts = scopes[0]
        else:
            cause, root, root_ts = "", "", None
        event = TraceEvent(
            self.clock.now, kind, args, cause, root, root_ts, self.stream
        )
        if self.keep_events:
            self.events.append(event)
        self.monitor.observe(event)
        return event

    def emit_at(self, ts: float, kind: str, **args: Any) -> TraceEvent:
        scopes = self._scopes
        if scopes:
            cause = scopes[-1][0]
            root, root_ts = scopes[0]
        else:
            cause, root, root_ts = "", "", None
        event = TraceEvent(ts, kind, args, cause, root, root_ts, self.stream)
        if self.keep_events:
            self.events.append(event)
        self.monitor.observe(event)
        return event
