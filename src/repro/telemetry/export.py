"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

:func:`to_chrome_trace` converts a :class:`~repro.telemetry.trace.Tracer`
event list into the Chrome trace-event format that ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* kernels render as complete spans (``ph="X"``) on the *execution* process,
* copies render as async spans (``ph="b"``/``"e"``) on their destination
  device's track, so overlap with kernels is visible,
* policy decisions and hints render as instants on the *policy* process,
* :class:`~repro.telemetry.timeline.Timeline` series render as counter
  tracks (``ph="C"``) — heap occupancy and cumulative traffic over time
  (the Figure 3/6 series).

Every emitted record carries ``ph``/``ts``/``pid``/``tid``/``name``.
Virtual seconds become microseconds (the format's unit).

:func:`write_jsonl` streams raw events one JSON object per line with sorted
keys — byte-identical across runs for a deterministic workload, which is
what makes traces diffable across policy ablations.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from repro.telemetry.timeline import Timeline
from repro.telemetry.trace import (
    ALLOC,
    COPY_END,
    COPY_RETRY,
    COPY_START,
    DEFRAG,
    EVICT,
    EVICT_SCAN,
    FAULT,
    FREE,
    GC,
    HINT,
    INVARIANT_CHECK,
    KERNEL_END,
    KERNEL_START,
    OOM_RETRY,
    PLACE,
    POLICY_STRIKE,
    PREFETCH,
    QUARANTINE,
    RECOVERY,
    RECOVERY_STEP,
    SETPRIMARY,
    STALL,
    TraceEvent,
)

__all__ = ["to_chrome_trace", "write_chrome_trace", "write_jsonl", "jsonl_lines"]

# Process/thread layout of the exported trace.
PID_EXECUTION = 1
PID_POLICY = 2
PID_DEVICES = 3
PID_COUNTERS = 4
TID_KERNELS = 1
TID_RUNTIME = 2

_RUNTIME_INSTANTS = frozenset(
    {
        GC, OOM_RETRY, INVARIANT_CHECK, STALL,
        # Robustness: fault injection and recovery land on the runtime track
        # so recoveries line up visually with the kernels they delayed.
        FAULT, RECOVERY_STEP, RECOVERY, COPY_RETRY, POLICY_STRIKE, QUARANTINE,
    }
)
_POLICY_INSTANTS = frozenset({HINT, PLACE, EVICT, EVICT_SCAN, PREFETCH, SETPRIMARY})
_DEVICE_INSTANTS = frozenset({ALLOC, FREE, DEFRAG})


def _us(seconds: float) -> float:
    """Virtual seconds -> trace microseconds (rounded for stable JSON)."""
    return round(seconds * 1e6, 3)


def _args_of(event: TraceEvent) -> dict:
    args = dict(event.args)
    if event.cause:
        args["cause"] = event.cause
    if event.root:
        args["root"] = event.root
    return args


class _DeviceTracks:
    """Stable device-name -> tid assignment (order of first appearance)."""

    def __init__(self) -> None:
        self._tids: dict[str, int] = {}

    def tid(self, device: str) -> int:
        tid = self._tids.get(device)
        if tid is None:
            tid = self._tids[device] = len(self._tids) + 1
        return tid

    def items(self) -> list[tuple[str, int]]:
        return list(self._tids.items())


def to_chrome_trace(
    events: Iterable[TraceEvent],
    *,
    timelines: Sequence[Timeline] = (),
) -> dict:
    """Build a Chrome trace-event document from a tracer's event list."""
    out: list[dict] = []
    devices = _DeviceTracks()
    kernel_stack: list[TraceEvent] = []

    for event in events:
        ts = _us(event.ts)
        if event.kind == KERNEL_START:
            kernel_stack.append(event)
        elif event.kind == KERNEL_END:
            start = kernel_stack.pop() if kernel_stack else event
            out.append(
                {
                    "ph": "X",
                    "ts": _us(start.ts),
                    "dur": round(ts - _us(start.ts), 3),
                    "pid": PID_EXECUTION,
                    "tid": TID_KERNELS,
                    "name": str(event.args.get("kernel", "kernel")),
                    "cat": "kernel",
                    "args": _args_of(event),
                }
            )
        elif event.kind == COPY_START:
            tid = devices.tid(str(event.args.get("dst", "?")))
            name = f"copy {event.args.get('src', '?')}→{event.args.get('dst', '?')}"
            record = {
                "ph": "b",
                "ts": ts,
                "pid": PID_DEVICES,
                "tid": tid,
                "name": name,
                "cat": "copy",
                "id": int(event.args.get("seq", 0)),
                "args": _args_of(event),
            }
            out.append(record)
        elif event.kind == COPY_END:
            tid = devices.tid(str(event.args.get("dst", "?")))
            name = f"copy {event.args.get('src', '?')}→{event.args.get('dst', '?')}"
            out.append(
                {
                    "ph": "e",
                    "ts": ts,
                    "pid": PID_DEVICES,
                    "tid": tid,
                    "name": name,
                    "cat": "copy",
                    "id": int(event.args.get("seq", 0)),
                    "args": {},
                }
            )
        elif event.kind in _POLICY_INSTANTS:
            out.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": PID_POLICY,
                    "tid": 1,
                    "name": event.kind,
                    "s": "t",
                    "args": _args_of(event),
                }
            )
        elif event.kind in _DEVICE_INSTANTS:
            tid = devices.tid(str(event.args.get("device", "?")))
            out.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": PID_DEVICES,
                    "tid": tid,
                    "name": event.kind,
                    "s": "t",
                    "args": _args_of(event),
                }
            )
        else:  # runtime instants and any future kinds
            out.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": PID_EXECUTION,
                    "tid": TID_RUNTIME,
                    "name": event.kind,
                    "s": "t",
                    "args": _args_of(event),
                }
            )

    for timeline in timelines:
        data = timeline.to_dict()
        for sample_ts, value, _label in data["samples"]:
            out.append(
                {
                    "ph": "C",
                    "ts": _us(sample_ts),
                    "pid": PID_COUNTERS,
                    "tid": 1,
                    "name": data["name"],
                    "args": {"value": value},
                }
            )

    meta: list[dict] = []
    for pid, name in (
        (PID_EXECUTION, "execution"),
        (PID_POLICY, "policy"),
        (PID_DEVICES, "devices"),
        (PID_COUNTERS, "counters"),
    ):
        meta.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": name},
            }
        )
    for thread_meta in (
        (PID_EXECUTION, TID_KERNELS, "kernels"),
        (PID_EXECUTION, TID_RUNTIME, "runtime"),
        (PID_POLICY, 1, "decisions"),
    ):
        pid, tid, name = thread_meta
        meta.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for device, tid in devices.items():
        meta.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": PID_DEVICES,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": device},
            }
        )

    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[TraceEvent],
    fp: IO[str],
    *,
    timelines: Sequence[Timeline] = (),
) -> None:
    """Serialise :func:`to_chrome_trace` output to an open text file."""
    json.dump(to_chrome_trace(events, timelines=timelines), fp)


def jsonl_lines(events: Iterable[TraceEvent]) -> Iterable[str]:
    """One compact, sorted-key JSON object per event (deterministic bytes)."""
    for event in events:
        yield json.dumps(event.to_json(), sort_keys=True, separators=(",", ":"))


def write_jsonl(events: Iterable[TraceEvent], fp: IO[str]) -> None:
    """Stream :func:`jsonl_lines` to an open text file, one event per line."""
    for line in jsonl_lines(events):
        fp.write(line)
        fp.write("\n")
