"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

:func:`to_chrome_trace` converts a :class:`~repro.telemetry.trace.Tracer`
event list into the Chrome trace-event format that ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* kernels render as complete spans (``ph="X"``) on the *execution* process,
* copies render as async spans (``ph="b"``/``"e"``) on their destination
  device's track, so overlap with kernels is visible,
* policy decisions and hints render as instants on the *policy* process,
* :class:`~repro.telemetry.timeline.Timeline` series render as counter
  tracks (``ph="C"``) — heap occupancy and cumulative traffic over time
  (the Figure 3/6 series).

Every emitted record carries ``ph``/``ts``/``pid``/``tid``/``name``.
Virtual seconds become microseconds (the format's unit).

:func:`write_jsonl` streams raw events one JSON object per line with sorted
keys — byte-identical across runs for a deterministic workload, which is
what makes traces diffable across policy ablations. The stream opens with a
``schema_version`` header line (v2); :func:`read_jsonl` loads either a v2 or
a headerless v1 stream back into :class:`TraceEvent` objects, routing any
top-level field it does not recognise into ``args`` so newer traces stay
loadable by older tooling and vice versa.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, Sequence

from repro.telemetry.timeline import Timeline
from repro.telemetry.trace import (
    ALLOC,
    COPY_END,
    COPY_RETRY,
    COPY_START,
    DECISION,
    DEFRAG,
    EVICT,
    EVICT_SCAN,
    FAULT,
    FREE,
    GC,
    HINT,
    INVARIANT_CHECK,
    KERNEL_END,
    KERNEL_START,
    OOM_RETRY,
    PLACE,
    POLICY_STRIKE,
    PREFETCH,
    QUARANTINE,
    RECOVERY,
    RECOVERY_STEP,
    SETDIRTY,
    SETPRIMARY,
    STALL,
    TraceEvent,
)

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "jsonl_lines",
    "read_jsonl",
    "iter_jsonl",
    "EventStream",
    "event_from_json",
]

# Version of the JSONL stream layout. v1 (PR 1) had no header; v2 adds the
# header line and the ledger-era event kinds (decision, setdirty); v3 adds
# the optional ``stream`` field (multi-tenant runs). Readers must tolerate
# *any* version: unknown kinds pass through as plain events and unknown
# top-level fields land in ``args``.
JSONL_SCHEMA_VERSION = 3

# TraceEvent's own serialised fields; everything else in a JSONL object is a
# kind-specific argument (or a field added by a future schema version).
_EVENT_FIELDS = frozenset({"ts", "kind", "cause", "root", "root_ts", "stream"})

# Process/thread layout of the exported trace.
PID_EXECUTION = 1
PID_POLICY = 2
PID_DEVICES = 3
PID_COUNTERS = 4
TID_KERNELS = 1
TID_RUNTIME = 2

_RUNTIME_INSTANTS = frozenset(
    {
        GC, OOM_RETRY, INVARIANT_CHECK, STALL,
        # Robustness: fault injection and recovery land on the runtime track
        # so recoveries line up visually with the kernels they delayed.
        FAULT, RECOVERY_STEP, RECOVERY, COPY_RETRY, POLICY_STRIKE, QUARANTINE,
    }
)
_POLICY_INSTANTS = frozenset(
    {HINT, PLACE, EVICT, EVICT_SCAN, PREFETCH, SETPRIMARY, DECISION}
)
_DEVICE_INSTANTS = frozenset({ALLOC, FREE, DEFRAG, SETDIRTY})


def _us(seconds: float) -> float:
    """Virtual seconds -> trace microseconds (rounded for stable JSON)."""
    return round(seconds * 1e6, 3)


def _args_of(event: TraceEvent) -> dict:
    args = dict(event.args)
    if event.stream:
        args["stream"] = event.stream
    if event.cause:
        args["cause"] = event.cause
    if event.root:
        args["root"] = event.root
    return args


class _DeviceTracks:
    """Stable device-name -> tid assignment (order of first appearance)."""

    def __init__(self) -> None:
        self._tids: dict[str, int] = {}

    def tid(self, device: str) -> int:
        tid = self._tids.get(device)
        if tid is None:
            tid = self._tids[device] = len(self._tids) + 1
        return tid

    def items(self) -> list[tuple[str, int]]:
        return list(self._tids.items())


def to_chrome_trace(
    events: Iterable[TraceEvent],
    *,
    timelines: Sequence[Timeline] = (),
) -> dict:
    """Build a Chrome trace-event document from a tracer's event list."""
    out: list[dict] = []
    devices = _DeviceTracks()
    # Kernel spans pair start/end per stream: interleaved tenants each get
    # their own stack and their own kernel lane. The streamless (single-
    # tenant) case keeps the historical TID_KERNELS lane.
    kernel_stacks: dict[str, list[TraceEvent]] = {}
    stream_tids: dict[str, int] = {"": TID_KERNELS}

    def kernel_tid(stream: str) -> int:
        tid = stream_tids.get(stream)
        if tid is None:
            # Named streams land on tids above the fixed runtime lane.
            tid = stream_tids[stream] = TID_RUNTIME + len(stream_tids)
        return tid

    for event in events:
        ts = _us(event.ts)
        if event.kind == KERNEL_START:
            kernel_stacks.setdefault(event.stream, []).append(event)
        elif event.kind == KERNEL_END:
            stack = kernel_stacks.get(event.stream)
            start = stack.pop() if stack else event
            out.append(
                {
                    "ph": "X",
                    "ts": _us(start.ts),
                    "dur": round(ts - _us(start.ts), 3),
                    "pid": PID_EXECUTION,
                    "tid": kernel_tid(event.stream),
                    "name": str(event.args.get("kernel", "kernel")),
                    "cat": "kernel",
                    "args": _args_of(event),
                }
            )
        elif event.kind == COPY_START:
            tid = devices.tid(str(event.args.get("dst", "?")))
            name = f"copy {event.args.get('src', '?')}→{event.args.get('dst', '?')}"
            record = {
                "ph": "b",
                "ts": ts,
                "pid": PID_DEVICES,
                "tid": tid,
                "name": name,
                "cat": "copy",
                "id": int(event.args.get("seq", 0)),
                "args": _args_of(event),
            }
            out.append(record)
        elif event.kind == COPY_END:
            tid = devices.tid(str(event.args.get("dst", "?")))
            name = f"copy {event.args.get('src', '?')}→{event.args.get('dst', '?')}"
            out.append(
                {
                    "ph": "e",
                    "ts": ts,
                    "pid": PID_DEVICES,
                    "tid": tid,
                    "name": name,
                    "cat": "copy",
                    "id": int(event.args.get("seq", 0)),
                    "args": {},
                }
            )
        elif event.kind in _POLICY_INSTANTS:
            out.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": PID_POLICY,
                    "tid": 1,
                    "name": event.kind,
                    "s": "t",
                    "args": _args_of(event),
                }
            )
        elif event.kind in _DEVICE_INSTANTS:
            tid = devices.tid(str(event.args.get("device", "?")))
            out.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": PID_DEVICES,
                    "tid": tid,
                    "name": event.kind,
                    "s": "t",
                    "args": _args_of(event),
                }
            )
        else:  # runtime instants and any future kinds
            out.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": PID_EXECUTION,
                    "tid": TID_RUNTIME,
                    "name": event.kind,
                    "s": "t",
                    "args": _args_of(event),
                }
            )

    for timeline in timelines:
        data = timeline.to_dict()
        for sample_ts, value, _label in data["samples"]:
            out.append(
                {
                    "ph": "C",
                    "ts": _us(sample_ts),
                    "pid": PID_COUNTERS,
                    "tid": 1,
                    "name": data["name"],
                    "args": {"value": value},
                }
            )

    meta: list[dict] = []
    for pid, name in (
        (PID_EXECUTION, "execution"),
        (PID_POLICY, "policy"),
        (PID_DEVICES, "devices"),
        (PID_COUNTERS, "counters"),
    ):
        meta.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": name},
            }
        )
    stream_lanes = tuple(
        (PID_EXECUTION, tid, f"kernels:{stream}")
        for stream, tid in stream_tids.items()
        if stream
    )
    for thread_meta in (
        (PID_EXECUTION, TID_KERNELS, "kernels"),
        (PID_EXECUTION, TID_RUNTIME, "runtime"),
        (PID_POLICY, 1, "decisions"),
    ) + stream_lanes:
        pid, tid, name = thread_meta
        meta.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for device, tid in devices.items():
        meta.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": PID_DEVICES,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": device},
            }
        )

    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[TraceEvent],
    fp: IO[str],
    *,
    timelines: Sequence[Timeline] = (),
) -> None:
    """Serialise :func:`to_chrome_trace` output to an open text file."""
    json.dump(to_chrome_trace(events, timelines=timelines), fp)


def jsonl_lines(events: Iterable[TraceEvent]) -> Iterable[str]:
    """One compact, sorted-key JSON object per event (deterministic bytes)."""
    for event in events:
        yield json.dumps(event.to_json(), sort_keys=True, separators=(",", ":"))


def write_jsonl(events: Iterable[TraceEvent], fp: IO[str]) -> None:
    """Stream a schema header then :func:`jsonl_lines`, one event per line."""
    header = {"schema": "repro.trace", "schema_version": JSONL_SCHEMA_VERSION}
    fp.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
    fp.write("\n")
    for line in jsonl_lines(events):
        fp.write(line)
        fp.write("\n")


def event_from_json(data: dict) -> TraceEvent:
    """Rebuild one event from its flat JSONL object.

    Inverse of :meth:`TraceEvent.to_json`, except that any top-level key this
    reader does not recognise as an event field is treated as a kind-specific
    argument — a trace written by a newer schema (extra fields) still loads.
    """
    args = {
        key: value for key, value in data.items() if key not in _EVENT_FIELDS
    }
    return TraceEvent(
        ts=float(data["ts"]),
        kind=str(data["kind"]),
        args=args,
        cause=str(data.get("cause", "")),
        root=str(data.get("root", "")),
        root_ts=data.get("root_ts"),
        stream=str(data.get("stream", "")),
    )


def iter_jsonl(fp: IO[str]) -> Iterator[TraceEvent]:
    """Stream a JSONL trace one event at a time — O(1) memory.

    Same format tolerance as :func:`read_jsonl` (v1 headerless or v2+ with
    header; blank lines skipped; unknown top-level fields into ``args``) but
    yields events as lines are read instead of materializing a list, so
    multi-million-event serving traces can be analyzed without holding the
    whole run in memory. Raises :class:`ValueError` on malformed lines.
    """
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError(f"line {lineno}: expected an object, got {data!r}")
        if "kind" not in data:
            if "schema_version" in data:
                continue  # header line (any version)
            raise ValueError(f"line {lineno}: no 'kind' and not a header")
        if "ts" not in data:
            raise ValueError(f"line {lineno}: event lacks 'ts'")
        yield event_from_json(data)


def read_jsonl(fp: IO[str]) -> list[TraceEvent]:
    """Load a JSONL event stream written by :func:`write_jsonl` into a list.

    Compatibility wrapper over :func:`iter_jsonl`; prefer the iterator (or
    :class:`EventStream` for a whole file) when the trace may be large.
    """
    return list(iter_jsonl(fp))


class EventStream:
    """A *re-iterable* lazy view of a JSONL trace file.

    The trace analyzers (`repro explain`/`diff`/`profile`) make several full
    passes over a trace — stream discovery, then per-stream folds, then
    stall attribution. A generator would be exhausted after the first pass,
    so this wrapper re-opens the file on every ``iter()``: each pass streams
    from disk with O(1) memory and no pass sees a half-consumed iterator.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def __iter__(self) -> Iterator[TraceEvent]:
        with open(self.path, "r", encoding="utf-8") as fp:
            yield from iter_jsonl(fp)
