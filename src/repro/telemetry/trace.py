"""Structured runtime event tracing (the observability tentpole).

The paper's evaluation is built entirely from observing data movement; this
module makes that observation first-class instead of ad hoc. A
:class:`Tracer` is a low-overhead event bus threaded through the three
layers of the system:

* the :class:`~repro.core.manager.DataManager` and
  :class:`~repro.memory.copyengine.CopyEngine` emit *mechanism* events
  (``alloc``, ``free``, ``copy_start``/``copy_end``, ``setprimary``,
  ``defrag``);
* policies emit *decision* events (``evict``, ``prefetch``, ``place``);
* the executor emits *boundary* events (``kernel_start``/``kernel_end``,
  ``hint``, ``gc``, ``oom_retry``, ``invariant_check``, ``stall``).

Every event is stamped with virtual time from the shared
:class:`~repro.sim.clock.SimClock`, so traces are deterministic and diffable
across policy ablations.

**Cause attribution.** Callers open a *scope* around policy entry points
(``with tracer.hint("will_write", obj): policy.will_write(obj)``). Any event
emitted while scopes are open records the innermost scope label as its
``cause`` and the outermost as its ``root`` — so a copy triggered by an
eviction that was itself triggered by a ``will_write`` hint reads
``cause="evict:a3" root="hint:will_write:a7"``. That is the hint → policy
decision → manager action chain the profile report aggregates.

**Zero cost when disabled.** The default tracer is :data:`NULL_TRACER`: all
of its methods are no-ops, ``scope()``/``hint()`` return a shared singleton
context manager (no per-call allocation), and hot paths guard event
construction with ``if tracer.enabled:`` so no argument dicts are built.
Tracing never advances the clock, so enabling it cannot change results.

**The monitor tier.** Between off and full tracing sits a third tier, the
always-on runtime monitor (``telemetry.monitor``). Its tracer reports
``enabled=False`` — so every full-trace emit site keeps its untraced fast
path — but sets ``monitoring=True``, and the handful of sites whose data
the monitor folds (kernels, stalls, copies, evictions, allocations,
faults) add an ``elif tracer.monitoring:`` branch that calls a
``RuntimeMonitor.note_*`` method directly: positional arguments only, no
kwargs dict, no :class:`TraceEvent`. That keeps the tier cheap enough to
leave on for every run (see docs/observability.md for the measured cost).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.clock import SimClock

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "EVENT_KINDS",
    "subject_label",
]

# -- event kinds --------------------------------------------------------------

ALLOC = "alloc"
FREE = "free"
COPY_START = "copy_start"
COPY_END = "copy_end"
EVICT = "evict"
EVICT_SCAN = "evictfrom"
PREFETCH = "prefetch"
PLACE = "place"
HINT = "hint"
SETPRIMARY = "setprimary"
# Explainability events (docs/observability.md, "Explaining a run"): the
# victim a policy chose *and* the candidates it rejected, and dirty-bit
# transitions (the writeback debt an eviction will have to pay).
DECISION = "decision"
SETDIRTY = "setdirty"
KERNEL_START = "kernel_start"
KERNEL_END = "kernel_end"
STALL = "stall"
DEFRAG = "defrag"
GC = "gc"
OOM_RETRY = "oom_retry"
INVARIANT_CHECK = "invariant_check"
# Robustness events (docs/robustness.md): fault injection and recovery.
FAULT = "fault"                    # the injector fired a fault
RECOVERY_STEP = "recovery_step"    # one rung of the OOM escalation ladder
RECOVERY = "recovery"              # the ladder recovered the allocation
COPY_RETRY = "copy_retry"          # a failed/corrupted copy attempt, retried
POLICY_STRIKE = "policy_strike"    # the watchdog caught a policy failure
QUARANTINE = "quarantine"          # the watchdog switched to the fallback
# Monitoring events (docs/observability.md, "Live monitoring"): an alert
# rule tripped or cleared in the always-on runtime monitor.
ALERT = "alert"
# Elastic operations (docs/robustness.md, "Elastic operations"): tenant
# churn, online capacity reconfiguration, and snapshot/restore boundaries.
DETACH = "detach"          # a tenant departed; its objects were reclaimed
RESIZE = "resize"          # a heap's capacity changed mid-run
SNAPSHOT = "snapshot"      # the runtime was checkpointed at this point
RESTORE = "restore"        # execution resumed from a checkpoint
# Serving events (docs/serving.md): one record per client request emitted
# when it reaches a final outcome, carrying the end-to-end latency — the
# per-request attribution `repro serve` reports percentiles over.
REQUEST = "request"        # a serving request reached a final outcome

EVENT_KINDS = frozenset(
    {
        ALLOC, FREE, COPY_START, COPY_END, EVICT, EVICT_SCAN, PREFETCH,
        PLACE, HINT, SETPRIMARY, DECISION, SETDIRTY, KERNEL_START,
        KERNEL_END, STALL, DEFRAG, GC, OOM_RETRY, INVARIANT_CHECK, FAULT,
        RECOVERY_STEP, RECOVERY, COPY_RETRY, POLICY_STRIKE, QUARANTINE,
        ALERT, DETACH, RESIZE, SNAPSHOT, RESTORE, REQUEST,
    }
)


def subject_label(subject: object) -> str:
    """A stable, human-readable label for a scope subject.

    Strings pass through; objects with a ``name`` (e.g.
    :class:`~repro.core.object.MemObject`, whose name is never empty) use it.
    """
    if isinstance(subject, str):
        return subject
    name = getattr(subject, "name", "")
    if name:
        return str(name)
    return f"#{getattr(subject, 'id', '?')}"


class TraceEvent:
    """One structured event, stamped with virtual time.

    ``args`` carries the kind-specific payload (device, byte counts, ...).
    ``cause``/``root`` are the innermost/outermost attribution scopes active
    at emission time; ``root_ts`` is the virtual time the root scope opened
    (the hint-to-movement latency baseline). ``stream`` is the execution
    stream (tenant) the event belongs to — empty in single-stream runs,
    the tenant id under the multi-stream scheduler, which retags the
    tracer on every stream switch.

    A hand-rolled ``__slots__`` class rather than a dataclass: event
    construction is the single hottest allocation in an enabled-tracer run
    (one per alloc/copy/kernel boundary), and skipping the per-instance
    ``__dict__`` plus the dataclass ``__init__`` indirection measurably
    cuts emission cost. Events are treated as immutable by convention.
    """

    __slots__ = ("ts", "kind", "args", "cause", "root", "root_ts", "stream")

    def __init__(
        self,
        ts: float,
        kind: str,
        args: Mapping[str, Any] | None = None,
        cause: str = "",
        root: str = "",
        root_ts: float | None = None,
        stream: str = "",
    ) -> None:
        self.ts = ts
        self.kind = kind
        self.args = {} if args is None else args
        self.cause = cause
        self.root = root
        self.root_ts = root_ts
        self.stream = stream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(ts={self.ts!r}, kind={self.kind!r}, "
            f"args={self.args!r}, cause={self.cause!r}, root={self.root!r}, "
            f"root_ts={self.root_ts!r}, stream={self.stream!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.ts == other.ts
            and self.kind == other.kind
            and self.args == other.args
            and self.cause == other.cause
            and self.root == other.root
            and self.root_ts == other.root_ts
            and self.stream == other.stream
        )

    def to_json(self) -> dict[str, Any]:
        """A flat, JSON-serialisable view (stable key order via sorting)."""
        out: dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        if self.stream:
            out["stream"] = self.stream
        if self.cause:
            out["cause"] = self.cause
        if self.root:
            out["root"] = self.root
        if self.root_ts is not None:
            out["root_ts"] = self.root_ts
        for key, value in self.args.items():
            out[key] = value
        return out


class _Scope:
    """A cause-attribution scope; push on ``__enter__``, pop on ``__exit__``."""

    __slots__ = ("_tracer", "_label")

    def __init__(self, tracer: "Tracer", label: str) -> None:
        self._tracer = tracer
        self._label = label

    def __enter__(self) -> "_Scope":
        self._tracer._push(self._label)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._pop()


class _NullScope:
    """Shared no-op scope: entering/exiting allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SCOPE = _NullScope()


class Tracer:
    """Collects :class:`TraceEvent` records against a virtual clock."""

    enabled = True
    # True only on the monitor-tier tracer (telemetry.monitor.MonitorTracer):
    # instrumented sites check it *after* `enabled`, so the flag costs the
    # untraced path one extra class-attribute load on the miss branch only.
    monitoring = False

    def __init__(self, clock: "SimClock") -> None:
        self.clock = clock
        self.events: list[TraceEvent] = []
        # (label, open-time) pairs, outermost first.
        self._scopes: list[tuple[str, float]] = []
        # The active execution stream (tenant); the multi-stream scheduler
        # retags this on every stream switch so events self-identify.
        self.stream = ""

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, **args: Any) -> TraceEvent:
        """Record an event at the current virtual time."""
        # Duplicated from emit_at: this is the hottest telemetry call site
        # and the extra frame + kwargs re-pack were visible in profiles.
        scopes = self._scopes
        if scopes:
            cause = scopes[-1][0]
            root, root_ts = scopes[0]
        else:
            cause, root, root_ts = "", "", None
        event = TraceEvent(
            self.clock.now, kind, args, cause, root, root_ts, self.stream
        )
        self.events.append(event)
        return event

    def emit_at(self, ts: float, kind: str, **args: Any) -> TraceEvent:
        """Record an event at an explicit virtual time (async completions)."""
        scopes = self._scopes
        if scopes:
            cause = scopes[-1][0]
            root, root_ts = scopes[0]
        else:
            cause, root, root_ts = "", "", None
        event = TraceEvent(ts, kind, args, cause, root, root_ts, self.stream)
        self.events.append(event)
        return event

    # -- attribution scopes -------------------------------------------------

    def scope(self, kind: str, subject: object = "") -> _Scope:
        """Open an attribution scope labelled ``kind[:subject]``."""
        label = subject_label(subject)
        return _Scope(self, f"{kind}:{label}" if label else kind)

    def hint(self, kind: str, subject: object) -> _Scope:
        """Emit a ``hint`` event and open its attribution scope.

        Used by the session/executor around Table II hint delivery so any
        movement a policy performs in response is attributed to the hint.
        """
        label = subject_label(subject)
        self.emit(HINT, hint=kind, subject=label)
        return _Scope(self, f"hint:{kind}:{label}")

    def _push(self, label: str) -> None:
        self._scopes.append((label, self.clock.now))

    def _pop(self) -> None:
        self._scopes.pop()

    @property
    def cause(self) -> str:
        """The innermost active scope label (empty outside any scope)."""
        return self._scopes[-1][0] if self._scopes else ""

    @property
    def root(self) -> str:
        """The outermost active scope label (empty outside any scope)."""
        return self._scopes[0][0] if self._scopes else ""

    def clear(self) -> None:
        """Drop collected events (between experiments; scopes are kept)."""
        self.events.clear()


class NullTracer:
    """The zero-cost disabled tracer; see the module docstring contract."""

    enabled = False
    monitoring = False
    events: tuple[TraceEvent, ...] = ()
    cause = ""
    root = ""
    stream = ""

    def emit(self, kind: str, **args: Any) -> None:
        return None

    def emit_at(self, ts: float, kind: str, **args: Any) -> None:
        return None

    def scope(self, kind: str, subject: object = "") -> _NullScope:
        return _NULL_SCOPE

    def hint(self, kind: str, subject: object) -> _NullScope:
        return _NULL_SCOPE

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
