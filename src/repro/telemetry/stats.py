"""Derived statistics: bus utilisation and simple series summaries.

Figure 6 reports the *average utilisation of the DRAM bus* over one training
iteration: bytes actually moved divided by what the bus could have moved in
the elapsed window. :class:`BusUtilization` computes that from a traffic
snapshot delta, the window length, and the device's peak bandwidth.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from repro.telemetry.counters import TrafficSnapshot

__all__ = ["BusUtilization", "summarize_series", "windowed_rate"]


@dataclass(frozen=True)
class BusUtilization:
    """Average fraction of a device bus's peak bandwidth actually used.

    ``utilization`` is always in [0, 1]. A physical bus cannot exceed its
    peak, so a raw ratio above 1 means the bandwidth model and the traffic
    accounting disagree — :meth:`from_traffic` warns and clamps, preserving
    the raw ratio in ``raw_utilization`` for diagnosis.
    """

    device: str
    utilization: float  # clamped to [0, 1]
    bytes_moved: int
    window: float
    raw_utilization: float = 0.0  # unclamped ratio (> 1 flags a mis-set model)

    @classmethod
    def from_traffic(
        cls,
        traffic: TrafficSnapshot,
        window_seconds: float,
        peak_bandwidth: float,
    ) -> "BusUtilization":
        if window_seconds <= 0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        if peak_bandwidth <= 0:
            raise ValueError(f"peak bandwidth must be positive, got {peak_bandwidth}")
        moved = traffic.total_bytes
        raw = moved / (window_seconds * peak_bandwidth)
        if raw > 1.0:
            warnings.warn(
                f"{traffic.device} bus utilisation {raw:.3f} exceeds 1.0: "
                "the bandwidth model and traffic accounting disagree "
                "(mis-set peak bandwidth?); clamping to 1.0",
                RuntimeWarning,
                stacklevel=2,
            )
        return cls(
            device=traffic.device,
            utilization=min(raw, 1.0),
            bytes_moved=moved,
            window=window_seconds,
            raw_utilization=raw,
        )

    def __str__(self) -> str:
        return f"{self.device} bus: {100.0 * self.utilization:.1f}% avg utilisation"


@dataclass(frozen=True)
class SeriesSummary:
    """Mean/min/max/std of a numeric series (population std)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float


def summarize_series(values: list[float]) -> SeriesSummary:
    """Summarise a series; raises on empty input to catch silent no-data bugs."""
    if not values:
        raise ValueError("cannot summarise an empty series")
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return SeriesSummary(
        count=count,
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        std=math.sqrt(variance),
    )


def windowed_rate(cumulative: "Timeline", window: float) -> "Timeline":
    """Differentiate a cumulative-bytes timeline into a rate series (B/s).

    Produces one sample per input sample (from the second onward): the
    average rate over the trailing ``window`` seconds. Feeding the result's
    values through ``value / peak_bandwidth`` yields utilisation-over-time —
    the time-resolved version of Figure 6.
    """
    from repro.telemetry.timeline import Timeline

    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    out = Timeline(f"{cumulative.name}/rate")
    times = cumulative.times()
    values = cumulative.values()
    for i in range(1, len(times)):
        start_time = times[i] - window
        start_value = cumulative.value_at(start_time)
        span = times[i] - max(start_time, times[0])
        if span <= 0:
            continue
        out.record(times[i], (values[i] - start_value) / span)
    return out
