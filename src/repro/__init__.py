"""CachedArrays — data tiering for heterogeneous memory systems.

A Python reproduction of *CachedArrays: Optimizing Data Movement for
Heterogeneous Memory Systems* (Hildebrand, Lowe-Power, Akella — IPDPS 2024).

The package separates the paper's three concerns:

* **data access** — :class:`~repro.core.CachedArray` handles resolved to
  primary regions once per kernel;
* **mechanism** — :class:`~repro.core.DataManager` over per-device heaps,
  with a bandwidth-modelled copy engine;
* **policy** — :class:`~repro.core.Policy` implementations reacting to the
  ``will_use/will_read/will_write/archive/retire`` hints.

Because the paper's Optane+DRAM testbed is not available, devices are
simulated (deterministic virtual clock, published bandwidth curves) and the
hardware-managed DRAM cache baseline ("2LM") is reproduced by
:mod:`repro.twolm`. See DESIGN.md for the substitution table.

Quickstart::

    import repro

    with repro.Session(repro.SessionConfig(dram="1 MiB", nvram="8 MiB",
                                           real=True)) as session:
        x = session.zeros((256, 256), name="x")
        x.will_write()
        with session.kernel(writes=[x]) as (_, (xv,)):
            xv[...] = 1.0
        x.archive()   # cold: preferred eviction victim
        ...
        x.retire()    # dead: never written back to slow memory
"""

from repro.core import (
    AccessIntent,
    CachedArray,
    DataManager,
    MemObject,
    Policy,
    Region,
    Session,
    SessionConfig,
)
from repro.errors import CachedArraysError, OutOfMemoryError
from repro.memory import CopyEngine, Heap, MemoryDevice, MemoryKind
from repro.platforms import PLATFORMS, platform
from repro.policies import MODES, ModeConfig, OptimizingPolicy, mode
from repro.sim import SimClock

__version__ = "1.0.0"

__all__ = [
    "AccessIntent",
    "CachedArray",
    "CachedArraysError",
    "CopyEngine",
    "DataManager",
    "Heap",
    "MODES",
    "MemObject",
    "MemoryDevice",
    "MemoryKind",
    "ModeConfig",
    "OptimizingPolicy",
    "OutOfMemoryError",
    "PLATFORMS",
    "platform",
    "Policy",
    "Region",
    "Session",
    "SessionConfig",
    "SimClock",
    "mode",
    "__version__",
]
