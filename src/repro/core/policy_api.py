"""The policy API: Table II hints plus placement callbacks.

Applications (or the trace executor standing in for the Zygote compiler pass)
communicate *semantic intent* through five hints:

* ``will_use`` / ``will_read`` / ``will_write`` — the object is about to be
  accessed (and, if known, how);
* ``archive`` — the object will not be used for some time;
* ``retire`` — the object will never be used again (the only hint whose
  misuse affects correctness).

A policy reacts by calling the data-management API. Two extra callbacks that
the paper's prose implies but Table II leaves implicit are made explicit
here, because some placement decision must happen at these moments:

* :meth:`Policy.place` — a new object needs its first region ("initially
  allocate data only in one specific device", requirement 1 of §III-A; the
  **L** optimisation toggles what this does);
* :meth:`Policy.ensure_resident` — a kernel is about to pin the object, so a
  primary must exist *somewhere* readable.
"""

from __future__ import annotations

import abc
import enum
from typing import TYPE_CHECKING

from repro.core.object import MemObject, Region
from repro.telemetry.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.manager import DataManager

__all__ = ["AccessIntent", "Policy", "DelegatingPolicy"]


class AccessIntent(enum.Enum):
    """How the application says it is about to touch an object."""

    USE = "use"  # unspecified read and/or write
    READ = "read"
    WRITE = "write"


class Policy(abc.ABC):
    """Base class for data-movement policies.

    Subclasses receive hints and direct the bound :class:`DataManager`; they
    must never touch heaps or the copy engine directly (the separation tested
    by ``tests/core/test_separation.py``).
    """

    def __init__(self) -> None:
        self._manager: "DataManager | None" = None

    # -- wiring ---------------------------------------------------------------

    def bind(self, manager: "DataManager") -> None:
        """Attach the mechanism layer. Called once by the session."""
        if self._manager is not None and self._manager is not manager:
            raise RuntimeError("policy is already bound to a different manager")
        self._manager = manager
        stats = getattr(self, "stats", None)
        attach = getattr(stats, "attach", None)
        if attach is not None:
            attach(manager.metrics)
        self.on_bound()

    @property
    def manager(self) -> "DataManager":
        if self._manager is None:
            raise RuntimeError("policy is not bound to a DataManager yet")
        return self._manager

    @property
    def tracer(self):
        """The session's event tracer (a shared no-op when unbound/disabled).

        Policies emit *decision* events (place, prefetch, evict) through
        this; the manager and engine emit the *mechanism* events they cause.
        """
        if self._manager is None:
            return NULL_TRACER
        return self._manager.tracer

    def on_bound(self) -> None:
        """Hook for subclasses to discover devices once bound."""

    # -- placement callbacks -----------------------------------------------------

    @abc.abstractmethod
    def place(self, obj: MemObject) -> Region:
        """Allocate and attach the first (primary) region for a new object."""

    @abc.abstractmethod
    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        """Guarantee the object has a usable primary before a kernel pins it.

        Returns the primary region the kernel will use. The policy may move
        the object (e.g. a write target into fast memory) or leave it alone.
        """

    # -- Table II hints -----------------------------------------------------------

    def will_use(self, obj: MemObject) -> None:
        """The object will be read or written in the near future."""

    def will_read(self, obj: MemObject) -> None:
        """The object will be read in the near future."""
        self.will_use(obj)

    def will_write(self, obj: MemObject) -> None:
        """The object will be written in the near future."""
        self.will_use(obj)

    def archive(self, obj: MemObject) -> None:
        """The object will not be used for some time."""

    def retire(self, obj: MemObject) -> None:
        """The object will never be used again; default frees everything."""
        self.manager.destroy_object(obj)

    # -- bookkeeping hooks ----------------------------------------------------------

    def on_kernel_finish(self, read: list[MemObject], wrote: list[MemObject]) -> None:
        """Called after a kernel unpins its operands (for usage tracking)."""

    def on_iteration_end(self) -> None:
        """Called between training iterations (e.g. to reset heuristics)."""

    # -- recovery hook (docs/robustness.md) ----------------------------------------

    def handle_pressure(self, device: str, nbytes: int) -> bool:
        """Try to free ``nbytes`` of contiguous space on ``device``.

        The executor's OOM escalation ladder calls this as its eviction rung
        after deferred-GC collection fails. Return ``True`` only if space was
        actually freed (the ladder retries the allocation); the default
        declines so stateless policies fall through to defragmentation and
        cross-tier fallback.
        """
        return False


class DelegatingPolicy(Policy):
    """A policy wrapper that forwards every operation to an inner policy.

    Base class for the robustness chain — the
    :class:`~repro.policies.watchdog.PolicyWatchdog` and the fault-injecting
    :class:`~repro.faults.policy.FaultyPolicy` both interpose on a real
    policy without it knowing. Subclasses override individual operations and
    call ``super()`` (or ``self.inner`` directly) to delegate.

    Binding is forwarded, not duplicated: the wrapper records the manager
    and binds the *inner* policy, whose ``bind`` attaches its own stats to
    the metrics registry exactly once.
    """

    def __init__(self, inner: Policy) -> None:
        super().__init__()
        self.inner = inner

    def bind(self, manager: "DataManager") -> None:
        if self._manager is not None and self._manager is not manager:
            raise RuntimeError("policy is already bound to a different manager")
        self._manager = manager
        self.inner.bind(manager)
        self.on_bound()

    @property
    def stats(self):
        return getattr(self.inner, "stats", None)

    def place(self, obj: MemObject) -> Region:
        return self.inner.place(obj)

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        return self.inner.ensure_resident(obj, intent)

    def will_use(self, obj: MemObject) -> None:
        self.inner.will_use(obj)

    def will_read(self, obj: MemObject) -> None:
        self.inner.will_read(obj)

    def will_write(self, obj: MemObject) -> None:
        self.inner.will_write(obj)

    def archive(self, obj: MemObject) -> None:
        self.inner.archive(obj)

    def retire(self, obj: MemObject) -> None:
        self.inner.retire(obj)

    def on_kernel_finish(self, read: list[MemObject], wrote: list[MemObject]) -> None:
        self.inner.on_kernel_finish(read, wrote)

    def on_iteration_end(self) -> None:
        self.inner.on_iteration_end()

    def handle_pressure(self, device: str, nbytes: int) -> bool:
        return self.inner.handle_pressure(device, nbytes)

    def check_invariant(self) -> None:
        check = getattr(self.inner, "check_invariant", None)
        if check is not None:
            check()
