"""Session: wires devices, manager, and policy into a usable runtime.

Two layers (docs/architecture.md, "Multi-tenant runtime"):

* :class:`SharedRuntime` owns the *mechanism*: preallocated heaps (one per
  device), the shared virtual clock, the copy engine, the
  :class:`DataManager`, the metrics registry, and the tracer. There is one
  per memory system, however many workloads run on it.
* :class:`Session` is a lightweight per-tenant *view* over a runtime: one
  bound :class:`Policy`, a tenant-prefixed object namespace, and an optional
  DRAM quota. Applications create arrays through it and access them inside
  ``kernel(...)`` scopes, which implement the paper's kernel programming
  model: hints fire before the kernel, operands are resolved to their
  primary regions exactly once, pinned for the kernel's duration, and write
  targets are marked dirty afterwards.

``Session(config)`` without an explicit runtime builds a private
:class:`SharedRuntime` underneath — the single-tenant API is unchanged.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import AllocationError, ConfigurationError, OutOfMemoryError
from repro.core.cachedarray import CachedArray
from repro.core.manager import DataManager
from repro.core.object import MemObject
from repro.core.policy_api import AccessIntent, Policy
from repro.memory.copyengine import CopyEngine
from repro.memory.device import MemoryDevice
from repro.memory.heap import Heap
from repro.policies.optimizing import OptimizingPolicy
from repro.sim.clock import SimClock
from repro.telemetry import trace as tracing
from repro.telemetry.counters import TrafficSnapshot
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.monitor import MonitorConfig, MonitorTracer, RuntimeMonitor
from repro.units import parse_size

__all__ = [
    "Session",
    "SessionConfig",
    "SharedRuntime",
    "issue_hints",
    "resolve_residency",
]

# Precomputed cause-scope labels for kernel residency resolution, so the
# traced hot path never concatenates strings per operand.
RESIDENCY_LABELS = {
    AccessIntent.USE: "resident_use",
    AccessIntent.READ: "resident_read",
    AccessIntent.WRITE: "resident_write",
}


def issue_hints(
    policy: Policy,
    tracer: "tracing.Tracer | tracing.NullTracer",
    read_objs: Iterable[MemObject],
    write_objs: Iterable[MemObject],
) -> None:
    """Fire ``will_read``/``will_write`` hints for a kernel's operands.

    The untraced branch (the default for every figure) skips the scope/hint
    context managers entirely rather than entering no-op ones — this runs
    once per kernel and the manager overhead was visible in profiles. Both
    branches drive the policy identically, so enabling tracing cannot
    change placement or timing.
    """
    if tracer.enabled:
        for obj in read_objs:
            with tracer.hint("will_read", obj):
                policy.will_read(obj)
        for obj in write_objs:
            with tracer.hint("will_write", obj):
                policy.will_write(obj)
    else:
        for obj in read_objs:
            policy.will_read(obj)
        for obj in write_objs:
            policy.will_write(obj)


def resolve_residency(
    policy: Policy,
    tracer: "tracing.Tracer | tracing.NullTracer",
    intents: Iterable[tuple[MemObject, AccessIntent]],
    pinned: list[MemObject],
) -> None:
    """Ensure residency for each ``(object, intent)`` pair and pin it.

    Objects are appended to ``pinned`` as they are pinned, so a failure
    mid-way leaves the caller able to unpin exactly what was pinned. The
    traced and untraced branches are kept separate for the same zero-cost
    reason as :func:`issue_hints`; this helper is the single definition both
    the :class:`Session` kernel scope and the trace executor share.
    """
    if tracer.enabled:
        for obj, intent in intents:
            with tracer.scope(RESIDENCY_LABELS[intent], obj):
                policy.ensure_resident(obj, intent)
            obj.pin()
            pinned.append(obj)
    else:
        for obj, intent in intents:
            policy.ensure_resident(obj, intent)
            obj.pin()
            pinned.append(obj)


@dataclass
class SessionConfig:
    """Declarative session setup.

    Either give explicit ``devices`` or use the DRAM/NVRAM shorthand
    matching the paper's platform (180 GB DRAM + 1300 GB NVRAM by default,
    the limits of Section IV-A). ``real`` backs every device with actual
    memory — only sensible at small capacities.
    """

    dram: int | str | None = "180 GB"
    nvram: int | str | None = "1300 GB"
    real: bool = False
    devices: Sequence[MemoryDevice] = field(default_factory=tuple)
    alignment: int = 64
    copy_threads: int = 8
    copy_overhead: float = 0.0
    # Queue copies on a DMA channel overlapping with compute instead of
    # blocking (Section VI; virtual devices only).
    async_movement: bool = False
    # Record structured trace events (docs/observability.md). Off by
    # default: the disabled path is a shared no-op tracer with zero
    # per-kernel cost.
    tracing: bool = False
    # Attach the always-on runtime monitor (docs/observability.md, "Live
    # monitoring"): windowed rollups, latency sketches, alerts, and the
    # flight recorder, all in bounded memory. Composes with ``tracing``:
    # monitor alone streams events without retaining them; monitor +
    # tracing keeps the full event list too.
    monitor: bool = False
    # Optional tuning for the monitor (window size, ring capacity, alert
    # rules, flight-dump directory); None uses MonitorConfig defaults.
    monitor_config: "MonitorConfig | None" = None

    def build_devices(self) -> list[MemoryDevice]:
        if self.devices:
            return list(self.devices)
        built: list[MemoryDevice] = []
        if self.dram is not None and parse_size(self.dram) > 0:
            built.append(MemoryDevice.dram(self.dram, real=self.real))
        if self.nvram is not None and parse_size(self.nvram) > 0:
            built.append(MemoryDevice.nvram(self.nvram, real=self.real))
        if not built:
            raise ConfigurationError("session needs at least one device")
        return built


class SharedRuntime:
    """The mechanism layer one memory system exposes to every tenant.

    Owns the devices, heaps, clock, copy engine, data manager, metrics,
    and tracer. Tenants attach through :meth:`session`, each bringing its
    own policy; they contend for the same heaps and DMA channels, so one
    tenant's pressure is visible to every other tenant's policy.

    The tenant population is *elastic*: :meth:`detach` removes a tenant
    mid-run (stream cancelled, objects reclaimed through the normal free
    path, DRAM quota refunded exactly) and :meth:`resize` changes a
    device's capacity online — the attach/detach churn path is exercised
    at serving rates by ``repro serve`` (docs/serving.md).
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        *,
        tracer: "tracing.Tracer | tracing.NullTracer | None" = None,
        injector: object | None = None,
    ) -> None:
        self.config = config or SessionConfig()
        self.clock = SimClock()
        devices = self.config.build_devices()
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate device names: {names}")
        if self.config.async_movement and any(d.is_real for d in devices):
            raise ConfigurationError(
                "async_movement is a timing model and requires virtual devices"
            )
        if tracer is None:
            if self.config.monitor:
                tracer = MonitorTracer(
                    self.clock,
                    RuntimeMonitor(self.config.monitor_config),
                    keep_events=self.config.tracing,
                )
            elif self.config.tracing:
                tracer = tracing.Tracer(self.clock)
            else:
                tracer = tracing.NULL_TRACER
        self.tracer = tracer
        # Chaos mode (docs/robustness.md): a FaultInjector wired through the
        # mechanism layer as a duck-typed hook. The runtime is the only place
        # that knows about it, so the firewall (mechanism never imports
        # repro.faults) holds.
        self.injector = injector
        if injector is not None:
            attach = getattr(injector, "attach", None)
            if attach is not None:
                attach(self.clock, self.tracer)
        self.heaps = {
            device.name: Heap(
                device, alignment=self.config.alignment, injector=injector
            )
            for device in devices
        }
        self.metrics = MetricsRegistry()
        self.engine = CopyEngine(
            self.clock,
            max_threads=self.config.copy_threads,
            per_transfer_overhead=self.config.copy_overhead,
            async_mode=self.config.async_movement,
            tracer=self.tracer,
            injector=injector,
        )
        self.manager = DataManager(
            self.heaps, self.engine, tracer=self.tracer, metrics=self.metrics
        )
        # The always-on monitor (if any tracer carries one) gets the exact
        # context the offline replay path can only estimate: device
        # capacities for occupancy alerts and the manager's quota
        # accounting for per-tenant headroom. Pure observation — nothing
        # here feeds back into placement or timing.
        self.monitor: RuntimeMonitor | None = getattr(
            self.tracer, "monitor", None
        )
        # Held by reference by the monitor: resize() mutates it in place so
        # occupancy-fraction alerts track the *current* capacity.
        self._monitor_capacities = {
            name: heap.capacity for name, heap in self.heaps.items()
        }
        if self.monitor is not None:
            self.monitor.bind_capacities(self._monitor_capacities)
            self.monitor.bind_usage_probe(self.manager.tenant_usage)
            self.monitor.bind_quotas(self.manager.tenant_quotas())
        # Elastic operations (docs/robustness.md): attached tenant views by
        # tenant id, an optional stream scheduler to cancel on detach, and
        # the idempotent-close latch.
        self._sessions: dict[str, "Session"] = {}
        self._scheduler: object | None = None
        self.closed = False

    # -- tenant attachment ----------------------------------------------------

    def session(
        self,
        policy: Policy | None = None,
        *,
        tenant: str = "",
        dram_quota: int | str | None = None,
    ) -> "Session":
        """Attach a tenant: a :class:`Session` view with its own policy."""
        return Session(
            policy=policy, runtime=self, tenant=tenant, dram_quota=dram_quota
        )

    def activate(self, tenant: str) -> None:
        """Make ``tenant`` the accounting principal for new allocations.

        The multi-stream scheduler calls this on every stream activation so
        DRAM-quota charging follows whichever tenant is currently running.
        """
        self.manager.active_tenant = tenant

    def default_policy(self) -> Policy:
        return self._default_policy(list(self.heaps))

    @staticmethod
    def _default_policy(names: list[str]) -> Policy:
        from repro.policies.noop import SingleDevicePolicy

        if "DRAM" in names and "NVRAM" in names:
            return OptimizingPolicy(fast="DRAM", slow="NVRAM", local_alloc=True)
        if len(names) == 1:
            return SingleDevicePolicy(names[0])
        raise ConfigurationError(
            f"no default policy for device set {names}; pass one explicitly"
        )

    # -- shared state ---------------------------------------------------------

    @property
    def is_real(self) -> bool:
        return all(h.device.is_real for h in self.heaps.values())

    def heap(self, device: str) -> Heap:
        return self.manager.heap(device)

    def traffic(self) -> dict[str, TrafficSnapshot]:
        return {name: heap.traffic.snapshot() for name, heap in self.heaps.items()}

    def occupancy(self) -> dict[str, int]:
        return {name: heap.used_bytes for name, heap in self.heaps.items()}

    def defragment(self) -> dict[str, int]:
        """Compact every heap (the paper's between-iteration housekeeping)."""
        return {name: self.manager.defragment(name) for name in self.heaps}

    # -- elastic operations (docs/robustness.md, "Elastic operations") --------

    def attach_scheduler(self, scheduler: object | None) -> None:
        """Register the stream scheduler so :meth:`detach` can cancel the
        departing tenant's stream (duck-typed: anything with ``cancel``)."""
        self._scheduler = scheduler

    def detach(self, tenant: str) -> dict[str, int]:
        """A tenant departs: cancel its stream, reclaim its objects through
        the normal free path, refund its quotas, drop its hint state.

        Returns ``{"objects": n, "bytes": freed, "quota": refunded}``.
        Raises :class:`ConfigurationError` for an unknown tenant (a second
        detach of the same tenant is unknown — refunds never double), and
        :class:`~repro.errors.ObjectStateError` if the tenant still pins an
        object (a kernel is mid-flight; cancel its stream first).
        """
        if not tenant:
            raise ConfigurationError("detach needs a non-empty tenant id")
        session = self._sessions.pop(tenant, None)
        known = session is not None or any(
            owner == tenant for owner, _ in self.manager.tenant_quotas()
        ) or self.manager.tenant_objects(tenant)
        if not known:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        if self._scheduler is not None:
            # Closing the generator unwinds kernel scopes (unpins operands),
            # so reclamation below goes through the normal free path.
            self._scheduler.cancel(tenant)  # type: ignore[attr-defined]
        objs = self.manager.tenant_objects(tenant)
        freed = 0
        for obj in objs:
            freed += sum(region.size for region in obj.regions())
            self.manager.destroy_object(obj)
        self.engine.drop_pending(f"{tenant}/")
        refunded = self.manager.drop_tenant(tenant)
        if session is not None:
            session._arrays.clear()
            session.closed = True
        quota_total = sum(refunded.values())
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                tracing.DETACH,
                tenant=tenant,
                objects=len(objs),
                nbytes=freed,
                quota=quota_total,
            )
        elif getattr(tracer, "monitoring", False):
            tracer.monitor.note_elastic("detach", self.clock.now, tenant)
        return {"objects": len(objs), "bytes": freed, "quota": quota_total}

    def resize(self, device: str, new_bytes: int | str) -> dict[str, object]:
        """Reconfigure ``device``'s capacity online.

        Growing is immediate. Shrinking below the current tail occupancy
        drives the recovery ladder — evict (each attached tenant's policy),
        defrag (compaction slides survivors out of the truncated tail), and
        finally a mechanism-level cross-tier migration of whatever still
        overlaps the tail — then retries the shrink. Raises
        :class:`~repro.errors.RecoveryExhaustedError` when the survivors
        cannot be placed anywhere. Ends with an invariant sweep.
        """
        from repro.runtime.recovery import LadderHooks, recover_allocation

        new = parse_size(new_bytes)
        heap = self.heap(device)
        old = heap.capacity
        steps = ""
        if new <= 0:
            raise ConfigurationError(f"resize target must be positive: {new}")
        if new > old:
            heap.grow(new)
        elif new < old:

            def attempt() -> bool:
                try:
                    heap.shrink(new)
                except AllocationError:
                    # Convert to the ladder's native currency: the tail that
                    # must be vacated, with the heap's honest free count
                    # (free >= requested steers the ladder toward defrag).
                    raise OutOfMemoryError(
                        device, old - new, heap.free_bytes
                    ) from None
                return True

            try:
                attempt()
            except OutOfMemoryError as err:
                hooks = LadderHooks(
                    collect=None,
                    evict=self._resize_evict,
                    defrag=lambda dev: self.manager.defragment(dev) > 0,
                    fallback=lambda: self._migrate_tail(device, new),
                )
                result = recover_allocation(
                    attempt, err, hooks, tracer=self.tracer, metrics=self.metrics
                )
                steps = "ladder" if result else ""
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                tracing.RESIZE,
                device=device,
                old=old,
                new=new,
                via=steps,
            )
        elif getattr(tracer, "monitoring", False):
            tracer.monitor.note_elastic("resize", self.clock.now, device)
        self._monitor_capacities[device] = heap.capacity
        self.manager.check_invariants()
        return {"device": device, "old": old, "new": heap.capacity, "via": steps}

    def _resize_evict(self, device: str, requested: int) -> bool:
        """Eviction rung for :meth:`resize`: each attached tenant's policy
        gets a chance to relieve pressure on ``device``."""
        acted = False
        for session in list(self._sessions.values()):
            try:
                if session.policy.handle_pressure(device, requested):
                    acted = True
            except OutOfMemoryError:
                continue
        return acted

    def _migrate_tail(self, device: str, new_capacity: int) -> bool:
        """Cross-tier fallback for :meth:`resize`: move every region still
        overlapping the truncated tail to another device, via the normal
        allocate/copy/re-point/free path. Returns whether the tail is clear."""
        heap = self.heap(device)
        manager = self.manager
        others = [name for name in self.heaps if name != device]
        for offset in heap.tail_live_offsets(new_capacity):
            region = manager.region_at(device, offset)
            obj = region.parent
            if obj is None:
                return False  # unowned allocation: nobody can re-point it
            if not region.is_primary:
                # A secondary copy: the primary holds the data, just drop it.
                manager.free(region)
                continue
            if obj.pinned:
                return False  # a kernel holds the primary; cannot move it
            moved = False
            for other in others:
                existing = obj.region_on(other)
                if existing is not None:
                    manager.copyto(existing, region)
                    manager.setprimary(obj, existing)
                    manager.setdirty(existing, False)
                    manager.free(region)
                    moved = True
                    break
                target = manager.try_allocate(other, region.size)
                if target is None:
                    continue
                manager.copyto(target, region)
                was_dirty = region.dirty
                manager.setprimary(obj, target)
                manager.setdirty(target, was_dirty)
                manager.free(region)
                moved = True
                break
            if not moved:
                return False
        return True

    def close(self) -> None:
        """Shut the runtime down (idempotent, safe after mid-run faults)."""
        if self.closed:
            return
        self.closed = True
        self.engine.shutdown()

    def __enter__(self) -> "SharedRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Session:
    """A tenant's view of the CachedArrays runtime: one bound policy.

    Standalone use (``Session(config)``) builds a private
    :class:`SharedRuntime`; multi-tenant use attaches to an existing one via
    :meth:`SharedRuntime.session`, which namespaces object names with the
    tenant id and can cap the tenant's DRAM footprint.
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        policy: Policy | None = None,
        *,
        tracer: "tracing.Tracer | tracing.NullTracer | None" = None,
        injector: object | None = None,
        runtime: SharedRuntime | None = None,
        tenant: str = "",
        dram_quota: int | str | None = None,
    ) -> None:
        if runtime is None:
            runtime = SharedRuntime(config, tracer=tracer, injector=injector)
            self._owns_runtime = True
        else:
            if config is not None or tracer is not None or injector is not None:
                raise ConfigurationError(
                    "config/tracer/injector belong to the SharedRuntime; "
                    "configure them there"
                )
            self._owns_runtime = False
        self.runtime = runtime
        self.tenant = tenant
        if dram_quota is not None:
            runtime.manager.set_quota(tenant, "DRAM", parse_size(dram_quota))
        if policy is None:
            policy = runtime.default_policy()
        self.policy = policy
        self.policy.bind(runtime.manager)
        self._arrays: dict[int, CachedArray] = {}
        self.closed = False
        # Register with the runtime so elastic operations (detach, resize's
        # eviction rung) can find every attached tenant view.
        runtime._sessions[tenant] = self

    # -- delegation to the shared runtime ------------------------------------

    @property
    def config(self) -> SessionConfig:
        return self.runtime.config

    @property
    def clock(self) -> SimClock:
        return self.runtime.clock

    @property
    def tracer(self) -> "tracing.Tracer | tracing.NullTracer":
        return self.runtime.tracer

    @property
    def injector(self) -> object | None:
        return self.runtime.injector

    @property
    def monitor(self) -> RuntimeMonitor | None:
        return self.runtime.monitor

    @property
    def heaps(self) -> dict[str, Heap]:
        return self.runtime.heaps

    @property
    def metrics(self) -> MetricsRegistry:
        return self.runtime.metrics

    @property
    def engine(self) -> CopyEngine:
        return self.runtime.engine

    @property
    def manager(self) -> DataManager:
        return self.runtime.manager

    # -- object namespace -----------------------------------------------------

    def qualify(self, name: str) -> str:
        """The tenant-namespaced form of an object name."""
        return f"{self.tenant}/{name}" if self.tenant else name

    def new_object(self, nbytes: int, name: str = "") -> MemObject:
        """Register a tenant-namespaced logical object with the manager."""
        return self.runtime.manager.new_object(nbytes, self.qualify(name))

    # -- array creation ---------------------------------------------------------

    def empty(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | str = np.float32,
        *,
        name: str = "",
    ) -> CachedArray:
        """Allocate an uninitialised array; the policy picks the device."""
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = int(math.prod(shape)) * dt.itemsize
        obj = self.new_object(nbytes, name)
        try:
            with self.tracer.scope("place", obj):
                self.policy.place(obj)
        except Exception:
            # Placement failed (OOM, policy fault, ...): don't leak the
            # half-born object — callers may retry through the recovery
            # ladder and must see the same pre-call state.
            self.manager.destroy_object(obj)
            raise
        array = CachedArray(self, obj, tuple(shape), dt)
        self._arrays[obj.id] = array
        return array

    def zeros(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | str = np.float32,
        *,
        name: str = "",
    ) -> CachedArray:
        array = self.empty(shape, dtype, name=name)
        if self.is_real:
            array.write(0)
        return array

    def from_numpy(self, data: np.ndarray, *, name: str = "") -> CachedArray:
        """Copy a host numpy array into a managed CachedArray (real mode)."""
        if not self.is_real:
            raise ConfigurationError("from_numpy requires a real-backed session")
        array = self.empty(data.shape, data.dtype, name=name)
        array.write(np.ascontiguousarray(data))
        return array

    def release(self, array: CachedArray) -> None:
        """Retire an array through the policy (the ``retire`` hint)."""
        self._arrays.pop(array.obj.id, None)
        with self.tracer.hint("retire", array.obj):
            self.policy.retire(array.obj)

    # -- kernel scope --------------------------------------------------------------

    @contextlib.contextmanager
    def kernel(
        self,
        reads: Sequence[CachedArray] = (),
        writes: Sequence[CachedArray] = (),
        *,
        hints: bool = True,
    ) -> Iterator[tuple[list[np.ndarray], list[np.ndarray]]]:
        """Execute a kernel under the kernel programming model.

        Issues ``will_read``/``will_write`` hints (Section III-E), resolves
        each operand to its primary region once, pins it so the primary
        cannot move mid-kernel, and yields ``(read_views, write_views)``.
        On exit, operands are unpinned and written primaries marked dirty.
        In virtual sessions the views are empty lists — only placement and
        accounting happen.
        """
        read_objs = [a.obj for a in reads]
        write_objs = [a.obj for a in writes]
        tracer = self.tracer
        if hints:
            issue_hints(self.policy, tracer, read_objs, write_objs)
        pinned: list[MemObject] = []
        # Resolve residency once per unique object; write intent dominates
        # when an operand is both read and written (in-place updates).
        intents: dict[int, tuple[MemObject, AccessIntent]] = {}
        for obj in read_objs:
            intents[obj.id] = (obj, AccessIntent.READ)
        for obj in write_objs:
            intents[obj.id] = (obj, AccessIntent.WRITE)
        try:
            resolve_residency(self.policy, tracer, intents.values(), pinned)
            if self.is_real:
                yield [a.view() for a in reads], [a.view() for a in writes]
            else:
                yield [], []
        finally:
            for obj in pinned:
                obj.unpin()
        self.policy.on_kernel_finish(read_objs, write_objs)

    # -- maintenance & introspection ---------------------------------------------------

    @property
    def is_real(self) -> bool:
        return self.runtime.is_real

    def heap(self, device: str) -> Heap:
        return self.manager.heap(device)

    def traffic(self) -> dict[str, TrafficSnapshot]:
        return self.runtime.traffic()

    def occupancy(self) -> dict[str, int]:
        return self.runtime.occupancy()

    def defragment(self) -> dict[str, int]:
        """Compact every heap (the paper's between-iteration housekeeping)."""
        return self.runtime.defragment()

    def describe(self) -> str:
        """A human-readable snapshot of the session's memory state."""
        from repro.units import format_size

        title = f"Session ({type(self.policy).__name__})"
        if self.tenant:
            title += f" tenant={self.tenant}"
        lines = [title]
        for name, heap in self.heaps.items():
            stats = heap.stats()
            lines.append(
                f"  {name}: {format_size(stats.used_bytes)} / "
                f"{format_size(stats.capacity)} used, "
                f"{stats.live_allocations} regions, "
                f"fragmentation {stats.external_fragmentation:.0%}"
            )
            snap = heap.traffic.snapshot()
            lines.append(
                f"    traffic: read {format_size(snap.read_bytes)}, "
                f"wrote {format_size(snap.write_bytes)}"
            )
        lines.append(f"  live objects: {len(self.manager.objects)}")
        lines.append(f"  virtual time: {self.clock.now:.6f} s")
        return "\n".join(lines)

    def close(self) -> None:
        """Detach this view; shut the runtime down when this session owns it.

        Idempotent and safe after mid-run faults: a second close (chaos
        teardown closes both the session and its runtime) is a no-op, so
        quotas are never refunded twice and no error masks the original
        failure.
        """
        if self.closed:
            return
        self.closed = True
        if self.runtime._sessions.get(self.tenant) is self:
            del self.runtime._sessions[self.tenant]
        if self._owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
