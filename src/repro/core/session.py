"""Session: wires devices, manager, and policy into a usable runtime.

A :class:`Session` owns the preallocated heaps (one per device), the shared
virtual clock, the copy engine, the :class:`DataManager`, and one bound
:class:`Policy`. Applications create arrays through it and access them inside
``kernel(...)`` scopes, which implement the paper's kernel programming model:
hints fire before the kernel, operands are resolved to their primary regions
exactly once, pinned for the kernel's duration, and write targets are marked
dirty afterwards.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.cachedarray import CachedArray
from repro.core.manager import DataManager
from repro.core.object import MemObject
from repro.core.policy_api import AccessIntent, Policy
from repro.memory.copyengine import CopyEngine
from repro.memory.device import MemoryDevice
from repro.memory.heap import Heap
from repro.policies.optimizing import OptimizingPolicy
from repro.sim.clock import SimClock
from repro.telemetry import trace as tracing
from repro.telemetry.counters import TrafficSnapshot
from repro.telemetry.metrics import MetricsRegistry
from repro.units import parse_size

__all__ = ["Session", "SessionConfig"]

# Precomputed cause-scope labels for kernel residency resolution, so the
# traced hot path never concatenates strings per operand.
RESIDENCY_LABELS = {
    AccessIntent.USE: "resident_use",
    AccessIntent.READ: "resident_read",
    AccessIntent.WRITE: "resident_write",
}


@dataclass
class SessionConfig:
    """Declarative session setup.

    Either give explicit ``devices`` or use the DRAM/NVRAM shorthand
    matching the paper's platform (180 GB DRAM + 1300 GB NVRAM by default,
    the limits of Section IV-A). ``real`` backs every device with actual
    memory — only sensible at small capacities.
    """

    dram: int | str | None = "180 GB"
    nvram: int | str | None = "1300 GB"
    real: bool = False
    devices: Sequence[MemoryDevice] = field(default_factory=tuple)
    alignment: int = 64
    copy_threads: int = 8
    copy_overhead: float = 0.0
    # Queue copies on a DMA channel overlapping with compute instead of
    # blocking (Section VI; virtual devices only).
    async_movement: bool = False
    # Record structured trace events (docs/observability.md). Off by
    # default: the disabled path is a shared no-op tracer with zero
    # per-kernel cost.
    tracing: bool = False

    def build_devices(self) -> list[MemoryDevice]:
        if self.devices:
            return list(self.devices)
        built: list[MemoryDevice] = []
        if self.dram is not None and parse_size(self.dram) > 0:
            built.append(MemoryDevice.dram(self.dram, real=self.real))
        if self.nvram is not None and parse_size(self.nvram) > 0:
            built.append(MemoryDevice.nvram(self.nvram, real=self.real))
        if not built:
            raise ConfigurationError("session needs at least one device")
        return built


class Session:
    """The CachedArrays runtime: devices + data manager + policy."""

    def __init__(
        self,
        config: SessionConfig | None = None,
        policy: Policy | None = None,
        *,
        tracer: "tracing.Tracer | tracing.NullTracer | None" = None,
        injector: object | None = None,
    ) -> None:
        self.config = config or SessionConfig()
        self.clock = SimClock()
        devices = self.config.build_devices()
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate device names: {names}")
        if self.config.async_movement and any(d.is_real for d in devices):
            raise ConfigurationError(
                "async_movement is a timing model and requires virtual devices"
            )
        if tracer is None:
            tracer = (
                tracing.Tracer(self.clock)
                if self.config.tracing
                else tracing.NULL_TRACER
            )
        self.tracer = tracer
        # Chaos mode (docs/robustness.md): a FaultInjector wired through the
        # mechanism layer as a duck-typed hook. The session is the only place
        # that knows about it, so the firewall (mechanism never imports
        # repro.faults) holds.
        self.injector = injector
        if injector is not None:
            attach = getattr(injector, "attach", None)
            if attach is not None:
                attach(self.clock, self.tracer)
        self.heaps = {
            device.name: Heap(
                device, alignment=self.config.alignment, injector=injector
            )
            for device in devices
        }
        self.metrics = MetricsRegistry()
        self.engine = CopyEngine(
            self.clock,
            max_threads=self.config.copy_threads,
            per_transfer_overhead=self.config.copy_overhead,
            async_mode=self.config.async_movement,
            tracer=self.tracer,
            injector=injector,
        )
        self.manager = DataManager(
            self.heaps, self.engine, tracer=self.tracer, metrics=self.metrics
        )
        if policy is None:
            policy = self._default_policy(names)
        self.policy = policy
        self.policy.bind(self.manager)
        self._arrays: dict[int, CachedArray] = {}

    @staticmethod
    def _default_policy(names: list[str]) -> Policy:
        from repro.policies.noop import SingleDevicePolicy

        if "DRAM" in names and "NVRAM" in names:
            return OptimizingPolicy(fast="DRAM", slow="NVRAM", local_alloc=True)
        if len(names) == 1:
            return SingleDevicePolicy(names[0])
        raise ConfigurationError(
            f"no default policy for device set {names}; pass one explicitly"
        )

    # -- array creation ---------------------------------------------------------

    def empty(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | str = np.float32,
        *,
        name: str = "",
    ) -> CachedArray:
        """Allocate an uninitialised array; the policy picks the device."""
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = int(math.prod(shape)) * dt.itemsize
        obj = self.manager.new_object(nbytes, name)
        try:
            with self.tracer.scope("place", obj):
                self.policy.place(obj)
        except Exception:
            # Placement failed (OOM, policy fault, ...): don't leak the
            # half-born object — callers may retry through the recovery
            # ladder and must see the same pre-call state.
            self.manager.destroy_object(obj)
            raise
        array = CachedArray(self, obj, tuple(shape), dt)
        self._arrays[obj.id] = array
        return array

    def zeros(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | str = np.float32,
        *,
        name: str = "",
    ) -> CachedArray:
        array = self.empty(shape, dtype, name=name)
        if self.is_real:
            array.write(0)
        return array

    def from_numpy(self, data: np.ndarray, *, name: str = "") -> CachedArray:
        """Copy a host numpy array into a managed CachedArray (real mode)."""
        if not self.is_real:
            raise ConfigurationError("from_numpy requires a real-backed session")
        array = self.empty(data.shape, data.dtype, name=name)
        array.write(np.ascontiguousarray(data))
        return array

    def release(self, array: CachedArray) -> None:
        """Retire an array through the policy (the ``retire`` hint)."""
        self._arrays.pop(array.obj.id, None)
        with self.tracer.hint("retire", array.obj):
            self.policy.retire(array.obj)

    # -- kernel scope --------------------------------------------------------------

    @contextlib.contextmanager
    def kernel(
        self,
        reads: Sequence[CachedArray] = (),
        writes: Sequence[CachedArray] = (),
        *,
        hints: bool = True,
    ) -> Iterator[tuple[list[np.ndarray], list[np.ndarray]]]:
        """Execute a kernel under the kernel programming model.

        Issues ``will_read``/``will_write`` hints (Section III-E), resolves
        each operand to its primary region once, pins it so the primary
        cannot move mid-kernel, and yields ``(read_views, write_views)``.
        On exit, operands are unpinned and written primaries marked dirty.
        In virtual sessions the views are empty lists — only placement and
        accounting happen.
        """
        read_objs = [a.obj for a in reads]
        write_objs = [a.obj for a in writes]
        tracer = self.tracer
        # Untraced sessions (the default) skip the no-op scope/hint context
        # managers; both branches drive the policy identically, so tracing
        # cannot change placement (same split as CachedArraysAdapter.kernel).
        traced = tracer.enabled
        if hints:
            if traced:
                for obj in read_objs:
                    with tracer.hint("will_read", obj):
                        self.policy.will_read(obj)
                for obj in write_objs:
                    with tracer.hint("will_write", obj):
                        self.policy.will_write(obj)
            else:
                for obj in read_objs:
                    self.policy.will_read(obj)
                for obj in write_objs:
                    self.policy.will_write(obj)
        pinned: list[MemObject] = []
        # Resolve residency once per unique object; write intent dominates
        # when an operand is both read and written (in-place updates).
        intents: dict[int, tuple[MemObject, AccessIntent]] = {}
        for obj in read_objs:
            intents[obj.id] = (obj, AccessIntent.READ)
        for obj in write_objs:
            intents[obj.id] = (obj, AccessIntent.WRITE)
        try:
            if traced:
                for obj, intent in intents.values():
                    with tracer.scope(RESIDENCY_LABELS[intent], obj):
                        self.policy.ensure_resident(obj, intent)
                    obj.pin()
                    pinned.append(obj)
            else:
                for obj, intent in intents.values():
                    self.policy.ensure_resident(obj, intent)
                    obj.pin()
                    pinned.append(obj)
            if self.is_real:
                yield [a.view() for a in reads], [a.view() for a in writes]
            else:
                yield [], []
        finally:
            for obj in pinned:
                obj.unpin()
        self.policy.on_kernel_finish(read_objs, write_objs)

    # -- maintenance & introspection ---------------------------------------------------

    @property
    def is_real(self) -> bool:
        return all(h.device.is_real for h in self.heaps.values())

    def heap(self, device: str) -> Heap:
        return self.manager.heap(device)

    def traffic(self) -> dict[str, TrafficSnapshot]:
        return {name: heap.traffic.snapshot() for name, heap in self.heaps.items()}

    def occupancy(self) -> dict[str, int]:
        return {name: heap.used_bytes for name, heap in self.heaps.items()}

    def defragment(self) -> dict[str, int]:
        """Compact every heap (the paper's between-iteration housekeeping)."""
        return {name: self.manager.defragment(name) for name in self.heaps}

    def describe(self) -> str:
        """A human-readable snapshot of the session's memory state."""
        from repro.units import format_size

        lines = [f"Session ({type(self.policy).__name__})"]
        for name, heap in self.heaps.items():
            stats = heap.stats()
            lines.append(
                f"  {name}: {format_size(stats.used_bytes)} / "
                f"{format_size(stats.capacity)} used, "
                f"{stats.live_allocations} regions, "
                f"fragmentation {stats.external_fragmentation:.0%}"
            )
            snap = heap.traffic.snapshot()
            lines.append(
                f"    traffic: read {format_size(snap.read_bytes)}, "
                f"wrote {format_size(snap.write_bytes)}"
            )
        lines.append(f"  live objects: {len(self.manager.objects)}")
        lines.append(f"  virtual time: {self.clock.now:.6f} s")
        return "\n".join(lines)

    def close(self) -> None:
        self.engine.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
