"""CachedArray: the user-facing array handle.

A ``CachedArray`` is what application code holds: shape, dtype, and a
reference to a managed :class:`~repro.core.object.MemObject`. The actual
bytes live in whichever region the policy has made primary; user code reaches
them through :meth:`view` (real-backed sessions) after entering a kernel
scope, or simply calls numpy-style helpers that do it internally.

Hint methods (``will_read``/``will_write``/``will_use``/``archive``/
``retire``) forward to the session's policy — Table II of the paper. They are
*optional*: a CachedArray works with zero hints, just with fewer
opportunities for the policy.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import ConfigurationError, ObjectStateError
from repro.core.object import MemObject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.session import Session

__all__ = ["CachedArray"]


class CachedArray:
    """An array whose backing memory is policy-managed across devices."""

    def __init__(
        self,
        session: "Session",
        obj: MemObject,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> None:
        self._session = session
        self._obj = obj
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        expected = int(math.prod(self.shape)) * self.dtype.itemsize
        if expected != obj.size:
            raise ConfigurationError(
                f"shape {self.shape} x {self.dtype} needs {expected} B "
                f"but object holds {obj.size} B"
            )

    # -- metadata ---------------------------------------------------------

    @property
    def obj(self) -> MemObject:
        return self._obj

    @property
    def session(self) -> "Session":
        return self._session

    @property
    def nbytes(self) -> int:
        return self._obj.size

    @property
    def size(self) -> int:
        return int(math.prod(self.shape))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def device(self) -> str:
        """Name of the device currently holding the primary copy."""
        primary = self._obj.primary
        if primary is None:
            raise ObjectStateError(f"{self._obj!r} has no primary region")
        return primary.device_name

    @property
    def retired(self) -> bool:
        return self._obj.retired

    # -- hints (Table II) ----------------------------------------------------

    def will_use(self) -> "CachedArray":
        self._session.policy.will_use(self._obj)
        return self

    def will_read(self) -> "CachedArray":
        self._session.policy.will_read(self._obj)
        return self

    def will_write(self) -> "CachedArray":
        self._session.policy.will_write(self._obj)
        return self

    def archive(self) -> "CachedArray":
        self._session.policy.archive(self._obj)
        return self

    def retire(self) -> None:
        """Declare this array dead. Any later use raises (and only improper
        use of retire affects correctness — Section III-D)."""
        self._session.release(self)

    # -- data access (real-backed sessions) -------------------------------------

    def view(self) -> np.ndarray:
        """A zero-copy numpy view of the primary region's bytes.

        Valid only while the primary does not move; use inside a
        ``session.kernel(...)`` scope, which pins the object.
        """
        primary = self._obj.primary
        if primary is None:
            raise ObjectStateError(f"{self._obj!r} has no primary region")
        raw = primary.heap.view(primary.offset, self.nbytes)
        return raw.view(self.dtype).reshape(self.shape)

    def read(self) -> np.ndarray:
        """Hint + pinned copy-out: a safe snapshot of the current contents."""
        self._session.policy.will_read(self._obj)
        with self._session.kernel(reads=[self]) as (views, _):
            return views[0].copy()

    def write(self, values: np.ndarray | float) -> "CachedArray":
        """Hint + pinned write of ``values`` into the array."""
        self._session.policy.will_write(self._obj)
        with self._session.kernel(writes=[self]) as (_, views):
            views[0][...] = values
        return self

    def __array__(self, dtype: object = None) -> np.ndarray:
        data = self.read()
        return data.astype(dtype) if dtype is not None else data

    def __repr__(self) -> str:
        where = "retired" if self.retired else f"on {self.device}"
        return (
            f"CachedArray(shape={self.shape}, dtype={self.dtype.name}, "
            f"{where}, obj={self._obj.name!r})"
        )


def total_nbytes(arrays: Iterable[CachedArray]) -> int:
    """Sum of backing sizes; handy for tests and reports."""
    return sum(array.nbytes for array in arrays)
