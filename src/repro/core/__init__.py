"""The CachedArrays core: objects, regions, the data manager, policies.

This package implements the paper's three separated concerns (Figure 1):

* data access via :class:`~repro.core.cachedarray.CachedArray` objects (one
  level of indirection: object -> primary region);
* the data-movement mechanism, :class:`~repro.core.manager.DataManager`,
  exposing the Section III-C data-management API;
* the policy interface, :class:`~repro.core.policy_api.Policy`, receiving the
  Table II hints (``will_use/will_read/will_write``, ``archive``, ``retire``)
  and driving the manager.

:class:`~repro.core.session.Session` wires the three together over a set of
memory devices.
"""

from repro.core.object import MemObject, Region
from repro.core.manager import DataManager
from repro.core.policy_api import Policy, AccessIntent
from repro.core.cachedarray import CachedArray
from repro.core.session import Session, SessionConfig, SharedRuntime

__all__ = [
    "MemObject",
    "Region",
    "DataManager",
    "Policy",
    "AccessIntent",
    "CachedArray",
    "Session",
    "SessionConfig",
    "SharedRuntime",
]
