"""The data manager: the paper's data-management API (Section III-C).

The manager is the *mechanism* layer. It knows how to allocate and free
regions, copy bytes between them, link regions to objects, and answer state
queries — and nothing about *why*. Policies drive it; applications never see
it (they talk to the policy through hints).

API surface mapped to the paper's names:

=====================  ====================================================
Paper                  Here
=====================  ====================================================
``getprimary(obj)``    :meth:`DataManager.getprimary`
``setprimary(obj,r)``  :meth:`DataManager.setprimary`
``allocate(dev,sz)``   :meth:`DataManager.allocate` / :meth:`try_allocate`
``free(r)``            :meth:`DataManager.free`
``copyto(dst,src)``    :meth:`DataManager.copyto`
``link(x,y)``          :meth:`DataManager.link`
``unlink(x,y)``        :meth:`DataManager.unlink`
``sizeof(r)``          :meth:`DataManager.sizeof`
``getlinked(r,dev)``   :meth:`DataManager.getlinked`
``in(r,dev)``          :meth:`DataManager.in_device`
``isdirty/setdirty``   :meth:`DataManager.isdirty` / :meth:`setdirty`
``parent(r)``          :meth:`DataManager.parent`
``evictfrom``          :meth:`DataManager.evictfrom`
=====================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import (
    ConfigurationError,
    LinkError,
    ObjectStateError,
    OutOfMemoryError,
    PolicyError,
    RegionStateError,
)
from repro.core.object import MemObject, Region
from repro.memory.copyengine import CopyEngine
from repro.memory.heap import Heap
from repro.telemetry import trace as tracing
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["DataManager"]


class DataManager:
    """Mechanism layer: regions, copies, links, and device state queries."""

    def __init__(
        self,
        heaps: dict[str, Heap],
        engine: CopyEngine,
        *,
        tracer: "tracing.Tracer | tracing.NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not heaps:
            raise ConfigurationError("DataManager needs at least one heap")
        self.heaps = dict(heaps)
        self.engine = engine
        self.tracer = tracer if tracer is not None else tracing.NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._regions: dict[tuple[str, int], Region] = {}
        self.objects: dict[int, MemObject] = {}
        # Multi-tenant accounting (docs/architecture.md, "Multi-tenant
        # runtime"). ``active_tenant`` is the accounting principal for new
        # allocations; the scheduler repoints it on every stream switch.
        # Everything below is guarded by ``self._quota`` being non-empty,
        # so single-tenant sessions pay nothing.
        self.active_tenant: str = ""
        self._quota: dict[tuple[str, str], int] = {}
        self._tenant_used: dict[tuple[str, str], int] = {}
        self._region_tenant: dict[tuple[str, int], str] = {}

    # -- tenant quotas --------------------------------------------------------

    def set_quota(self, tenant: str, device: str, limit: int) -> None:
        """Cap ``tenant``'s live bytes on ``device``.

        Must be set before the tenant allocates: only regions allocated
        while quotas exist are charged to their owner. Exceeding the cap
        raises :class:`OutOfMemoryError` from :meth:`allocate` exactly like
        heap exhaustion, so policies and the recovery ladder respond the
        same way (evicting the tenant's own regions frees its budget).
        """
        self.heap(device)  # validate the device name
        self._quota[(tenant, device)] = int(limit)

    def tenant_used(self, tenant: str, device: str) -> int:
        """Quota-charged live bytes for ``tenant`` on ``device``."""
        return self._tenant_used.get((tenant, device), 0)

    def tenant_usage(self) -> dict[tuple[str, str], int]:
        """The full (tenant, device) -> live-bytes accounting table.

        The runtime monitor samples this at window close for quota-headroom
        rollups; treat the returned mapping as read-only.
        """
        return self._tenant_used

    def tenant_quotas(self) -> dict[tuple[str, str], int]:
        """The live (tenant, device) -> byte-limit table (read-only)."""
        return self._quota

    def tenant_objects(self, tenant: str) -> list[MemObject]:
        """Live objects in ``tenant``'s namespace (``tenant/...`` names)."""
        prefix = f"{tenant}/"
        return [
            obj for obj in self.objects.values() if obj.name.startswith(prefix)
        ]

    def _reattribute_regions(self, tenant: str) -> None:
        """Hand ``tenant``'s charges on *other* tenants' data back to them.

        A region is charged to whoever was active when it was allocated —
        which, for eviction copies, can be a different tenant than the one
        whose object it backs. When the charged tenant departs, those
        regions stay live (the data belongs to a survivor), so the charge
        moves to the backing object's namespace owner (or to the unquota'd
        ``""`` account for orphans). Without this, a departing tenant either
        leaks charged bytes or strands a row that can go negative later.
        """
        for key, owner in list(self._region_tenant.items()):
            if owner != tenant:
                continue
            region = self._regions.get(key)
            if region is None:  # pragma: no cover - defensive
                del self._region_tenant[key]
                continue
            parent = region.parent
            name = parent.name if parent is not None else ""
            new_owner = name.split("/", 1)[0] if "/" in name else ""
            device = key[0]
            self._region_tenant[key] = new_owner
            old_key = (tenant, device)
            self._tenant_used[old_key] = (
                self._tenant_used.get(old_key, 0) - region.size
            )
            new_key = (new_owner, device)
            self._tenant_used[new_key] = (
                self._tenant_used.get(new_key, 0) + region.size
            )

    def drop_tenant(self, tenant: str) -> dict[str, int]:
        """Remove ``tenant``'s quota rows after its objects are gone.

        Charges the tenant carries for *other* tenants' regions (eviction
        copies it paid for) are first re-attributed to the data's owners.
        Returns the refunded (device -> quota bytes) mapping. Raises
        :class:`ObjectStateError` if the tenant still owns live bytes —
        callers must reclaim objects through the normal free path first
        (:meth:`destroy_object`), which is what refunds the usage; dropping
        the rows while bytes are charged would silently leak accounting.
        """
        self._reattribute_regions(tenant)
        leftover = {
            device: used
            for (owner, device), used in self._tenant_used.items()
            if owner == tenant and used
        }
        if leftover:
            raise ObjectStateError(
                f"tenant {tenant!r} still owns live bytes: {leftover}"
            )
        refunded = {
            device: limit
            for (owner, device), limit in self._quota.items()
            if owner == tenant
        }
        for device in refunded:
            del self._quota[(tenant, device)]
        for key in [k for k in self._tenant_used if k[0] == tenant]:
            del self._tenant_used[key]
        if self.active_tenant == tenant:
            self.active_tenant = ""
        return refunded

    # -- device helpers -----------------------------------------------------

    def heap(self, device: str) -> Heap:
        try:
            return self.heaps[device]
        except KeyError:
            raise ConfigurationError(
                f"unknown device {device!r}; have {sorted(self.heaps)}"
            ) from None

    def devices(self) -> list[str]:
        return list(self.heaps)

    def free_bytes(self, device: str) -> int:
        """Free bytes on ``device`` right now.

        Part of the policy-visible mechanism API: policies use it to report
        truthful ``free`` counts in the :class:`OutOfMemoryError` they raise
        (free >= requested tells the recovery ladder the heap is fragmented,
        not full).
        """
        return self.heap(device).free_bytes

    # -- object lifecycle -----------------------------------------------------

    def new_object(self, size: int, name: str = "") -> MemObject:
        """Register a new logical object (it has no region yet)."""
        obj = MemObject(size, name)
        self.objects[obj.id] = obj
        return obj

    def destroy_object(self, obj: MemObject) -> None:
        """Retire an object: free every region and mark it unusable.

        This is the mechanism behind the policy-level ``retire`` hint; after
        it, any access raises. Pinned objects cannot be destroyed.
        """
        if obj.pinned:
            raise ObjectStateError(f"cannot destroy pinned {obj!r}")
        for region in obj.regions():
            obj.detach(region)
            self._release(region)
        obj.retired = True
        self.objects.pop(obj.id, None)

    # -- object functions ------------------------------------------------------

    def getprimary(self, obj: MemObject) -> Region:
        obj.check_usable()
        primary = obj.primary
        if primary is None:
            raise ObjectStateError(f"{obj!r} has no primary region")
        return primary

    def setprimary(self, obj: MemObject, region: Region) -> None:
        """Make ``region`` the object's primary (attaching it if needed)."""
        obj.check_usable()
        region.check_live()
        obj.attach(region, primary=True)
        if self.tracer.enabled:
            self.tracer.emit(
                tracing.SETPRIMARY,
                obj=obj.name,
                device=region.device_name,
                nbytes=region.size,
            )

    # -- region functions -------------------------------------------------------

    def allocate(self, device: str, size: int) -> Region:
        """Allocate a region on ``device``; raises ``OutOfMemoryError``.

        With tenant quotas configured, the active tenant's budget on the
        device is checked first and charged on success.
        """
        heap = self.heap(device)
        if self._quota:
            key = (self.active_tenant, device)
            limit = self._quota.get(key)
            if limit is not None:
                used = self._tenant_used.get(key, 0)
                if used + size > limit:
                    raise OutOfMemoryError(device, size, max(0, limit - used))
        offset = heap.allocate(size)
        region = Region(heap, offset, size)
        self._regions[(device, offset)] = region
        if self._quota:
            key = (self.active_tenant, device)
            self._tenant_used[key] = self._tenant_used.get(key, 0) + size
            self._region_tenant[(device, offset)] = self.active_tenant
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                tracing.ALLOC, device=device, offset=offset, nbytes=size
            )
        elif tracer.monitoring:
            tracer.monitor.note_alloc(
                tracer.clock.now, device, size, offset, tracer.stream
            )
        return region

    def try_allocate(self, device: str, size: int) -> Region | None:
        """Allocate, returning ``None`` on exhaustion (Listing 2's idiom)."""
        try:
            return self.allocate(device, size)
        except OutOfMemoryError:
            return None

    def free(self, region: Region) -> None:
        """Free a region. A primary must be detached from its object first
        (``setprimary`` elsewhere or ``destroy_object``), mirroring Listing 1
        where ``free(x)`` happens only after ``setprimary(object, y)``."""
        region.check_live()
        if region.is_primary:
            raise RegionStateError(
                f"cannot free {region!r}: it is still its object's primary"
            )
        if region.parent is not None:
            region.parent.detach(region)
        self._release(region)

    def _release(self, region: Region) -> None:
        region.heap.free(region.offset)
        del self._regions[(region.device_name, region.offset)]
        if self._quota:
            # Charge the recorded owner, not the active tenant: cross-tenant
            # evictions must refund the victim's budget, not the evictor's.
            owner = self._region_tenant.pop(
                (region.device_name, region.offset), None
            )
            if owner is not None:
                key = (owner, region.device_name)
                self._tenant_used[key] = (
                    self._tenant_used.get(key, 0) - region.size
                )
        region.freed = True
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                tracing.FREE,
                device=region.device_name,
                offset=region.offset,
                nbytes=region.size,
            )
        elif tracer.monitoring:
            tracer.monitor.note_free(
                tracer.clock.now,
                region.device_name,
                region.size,
                region.offset,
                tracer.stream,
            )

    def copyto(self, dst: Region, src: Region) -> None:
        """Copy the full logical contents of ``src`` into ``dst``."""
        src.check_live()
        dst.check_live()
        if dst.size < src.size:
            raise RegionStateError(
                f"copyto target {dst!r} smaller than source {src!r}"
            )
        record = self.engine.copy(
            src.heap, src.offset, dst.heap, dst.offset, src.size
        )
        # Asynchronous copies complete later; consumers of the destination
        # must wait until then (enforced at kernel-pin time).
        dst.ready_at = record.completes_at
        if self.tracer.enabled and self.engine.async_mode:
            # Remember what is in flight so DMA-drain stalls can blame the
            # specific objects still being moved (docs/observability.md).
            parent = dst.parent or src.parent
            self.engine.note_pending(
                record.completes_at, parent.name if parent is not None else ""
            )

    def link(self, x: Region, y: Region) -> None:
        """Associate two regions with the same object (primary stays put)."""
        x.check_live()
        y.check_live()
        owner_x, owner_y = x.parent, y.parent
        if owner_x is None and owner_y is None:
            raise LinkError(f"neither {x!r} nor {y!r} belongs to an object")
        if owner_x is not None and owner_y is not None:
            if owner_x is not owner_y:
                raise LinkError(f"{x!r} and {y!r} belong to different objects")
            return  # already linked
        owner = owner_x if owner_x is not None else owner_y
        orphan = y if owner_x is not None else x
        assert owner is not None
        owner.attach(orphan, primary=False)

    def unlink(self, x: Region, y: Region) -> None:
        """Break the association; the non-primary region is detached."""
        x.check_live()
        y.check_live()
        if x.parent is None or x.parent is not y.parent:
            raise LinkError(f"{x!r} and {y!r} are not linked")
        owner = x.parent
        if x.is_primary and y.is_primary:  # pragma: no cover - impossible
            raise LinkError("both regions claim to be primary")
        if not x.is_primary and not y.is_primary:
            raise LinkError(
                f"refusing to unlink two secondaries of {owner!r}; "
                "detach them individually via free()"
            )
        orphan = y if x.is_primary else x
        owner.detach(orphan)

    # -- query functions ---------------------------------------------------------

    def sizeof(self, target: Region | MemObject) -> int:
        """Logical size in bytes of a region or an object."""
        if isinstance(target, Region):
            target.check_live()
        else:
            target.check_usable()
        return target.size

    def getlinked(self, region: Region, device: str) -> Region | None:
        """The linked region of ``region``'s object on ``device``, if any."""
        region.check_live()
        self.heap(device)  # validate the device name
        if region.parent is None:
            return None
        return region.parent.region_on(device)

    def in_device(self, region: Region, device: str) -> bool:
        """Paper's ``in(x, DEV)``: does ``region`` live on ``device``?"""
        region.check_live()
        self.heap(device)
        return region.device_name == device

    def isdirty(self, region: Region) -> bool:
        region.check_live()
        return region.dirty

    def setdirty(self, region: Region, dirty: bool = True) -> None:
        region.check_live()
        if region.dirty != dirty and self.tracer.enabled:
            # Only actual transitions: a dirty bit flipping to True is
            # writeback debt a future eviction must pay; flipping to False
            # (post-copy) is that debt settled. Redundant writes are noise.
            parent = region.parent
            self.tracer.emit(
                tracing.SETDIRTY,
                obj=parent.name if parent is not None else "",
                device=region.device_name,
                nbytes=region.size,
                dirty=dirty,
            )
        region.dirty = dirty

    def parent(self, region: Region) -> MemObject:
        region.check_live()
        if region.parent is None:
            raise ObjectStateError(f"{region!r} belongs to no object")
        return region.parent

    def region_at(self, device: str, offset: int) -> Region:
        """The live region starting at ``offset`` on ``device``."""
        region = self._regions.get((device, offset))
        if region is None:
            raise RegionStateError(f"no region at {device}@{offset:#x}")
        return region

    def regions_on(self, device: str) -> Iterator[Region]:
        """Live regions on a device in address order."""
        heap = self.heap(device)
        for block in heap.live_blocks():
            yield self._regions[(device, block.offset)]

    # -- eviction support -----------------------------------------------------------

    def _span(self, device: str, start_offset: int, size: int) -> list[int] | None:
        """The span ``evictfrom`` would pick: forward from ``start_offset``,
        falling back to the bottom of the heap when the arena end is hit."""
        heap = self.heap(device)
        victims = heap.collect_span(start_offset, size)
        if victims is None and start_offset != 0:
            victims = heap.collect_span(0, size)
        return victims

    def span_victims(
        self, device: str, start: Region, size: int
    ) -> list[Region] | None:
        """Regions that ``evictfrom(device, start, size, ...)`` would evict.

        Policies use this to pre-check a candidate span (e.g. to skip spans
        containing pinned kernel operands) before committing to an eviction.
        Returns ``None`` when no contiguous span is reachable.
        """
        start.check_live()
        if start.heap is not self.heap(device):
            raise RegionStateError(f"{start!r} is not on device {device!r}")
        offsets = self._span(device, start.offset, size)
        if offsets is None:
            return None
        return [self._regions[(device, offset)] for offset in offsets]

    def evictfrom(
        self,
        device: str,
        start: Region,
        size: int,
        callback: Callable[[Region], None],
    ) -> None:
        """Free a contiguous ``size``-byte span of ``device`` (Listing 2).

        Walks forward from ``start``, invoking ``callback`` (typically the
        policy's ``evict``) on every live region in the span. If the arena
        end is reached first, retries once from the bottom of the heap. The
        callback must leave each region freed; a region it leaves live (for
        example because the object is pinned) aborts with ``PolicyError``
        so policies cannot silently fail to make room.
        """
        start.check_live()
        if start.heap is not self.heap(device):
            raise RegionStateError(f"{start!r} is not on device {device!r}")
        victims = self._span(device, start.offset, size)
        if victims is None:
            raise OutOfMemoryError(device, size, self.heap(device).free_bytes)
        self.metrics.histogram("manager.eviction_cascade_depth").observe(
            len(victims)
        )
        if self.tracer.enabled:
            self.tracer.emit(
                tracing.EVICT_SCAN,
                device=device,
                depth=len(victims),
                nbytes=size,
            )
        for offset in victims:
            region = self._regions[(device, offset)]
            callback(region)
            if not region.freed:
                raise PolicyError(
                    f"evictfrom callback left {region!r} live; cannot make room"
                )

    # -- maintenance --------------------------------------------------------------

    def defragment(self, device: str) -> int:
        """Compact a heap, re-pointing all affected regions."""
        heap = self.heap(device)
        moves: list[tuple[int, int]] = []

        def on_move(old: int, new: int, size: int) -> None:
            moves.append((old, new))

        moved = heap.defragment(on_move)
        for old, new in moves:
            region = self._regions.pop((device, old))
            region.offset = new
            self._regions[(device, new)] = region
            if self._quota:
                owner = self._region_tenant.pop((device, old), None)
                if owner is not None:
                    self._region_tenant[(device, new)] = owner
        if self.tracer.enabled and moved:
            self.tracer.emit(tracing.DEFRAG, device=device, moves=moved)
        return moved

    def check_invariants(self) -> None:
        """Validate cross-layer consistency (used by tests after every op)."""
        for heap in self.heaps.values():
            heap.allocator.check_invariants()
        for (device, offset), region in self._regions.items():
            if region.freed:
                raise AssertionError(f"freed region {region!r} still registered")
            if region.device_name != device or region.offset != offset:
                raise AssertionError(f"region index out of sync for {region!r}")
            if region.parent is not None:
                if region.parent.region_on(device) is not region:
                    raise AssertionError(f"{region!r} not known to its object")
        for obj in self.objects.values():
            for region in obj.regions():
                if self._regions.get((region.device_name, region.offset)) is not region:
                    raise AssertionError(f"{obj!r} holds unregistered {region!r}")

    def check(self) -> None:
        """Alias for :meth:`check_invariants` — the post-recovery sweep the
        chaos suite runs after every fault plan."""
        self.check_invariants()
