"""Objects and regions: the level of indirection at the heart of the design.

Section III-C: a *region* is a contiguous slice of one device's heap that
holds either the current data for an object (the *primary*) or a copy (a
*secondary*). Two regions are *linked* when they belong to the same object.
A secondary is *valid* while the primary is clean, and *stale* once the
primary has been written without propagating the change.

Invariants enforced here and in the manager:

* a region belongs to at most one object, and an object holds at most one
  region per device (linking a second region on the same device is an error);
* exactly one of an object's regions is the primary (until the object is
  retired);
* freed regions are inert — any further use raises
  :class:`~repro.errors.RegionStateError`;
* a pinned object's primary cannot change (kernels resolve the indirection
  once at launch; Section III-C "an object's primary cannot change during
  the execution of a kernel").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import LinkError, ObjectStateError, RegionStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.heap import Heap

__all__ = ["Region", "MemObject", "id_watermarks", "restore_id_floor"]


class _IdSource:
    """A restorable monotonic id counter.

    ``itertools.count`` would do for a single process, but snapshot/restore
    (:mod:`repro.runtime.elastic`) needs to export the high-water mark and
    re-seed a fresh process so auto-generated names like ``obj{id}`` stay
    deterministic across the restore boundary.
    """

    __slots__ = ("next_id",)

    def __init__(self, start: int = 0) -> None:
        self.next_id = start

    def __call__(self) -> int:
        value = self.next_id
        self.next_id = value + 1
        return value

    def floor(self, minimum: int) -> None:
        """Never hand out an id below ``minimum`` (restore-time re-seed)."""
        if minimum > self.next_id:
            self.next_id = minimum


_region_ids = _IdSource()
_object_ids = _IdSource()


def id_watermarks() -> dict[str, int]:
    """The next region/object ids this process would assign (snapshot)."""
    return {"region": _region_ids.next_id, "object": _object_ids.next_id}


def restore_id_floor(watermarks: dict[str, int]) -> None:
    """Raise the id counters to at least a snapshot's watermarks.

    Floors (never lowers) so restoring an old snapshot into a long-lived
    process cannot recycle ids that are already in use here.
    """
    _region_ids.floor(int(watermarks.get("region", 0)))
    _object_ids.floor(int(watermarks.get("object", 0)))


class Region:
    """A contiguous allocation on one heap, possibly backing an object."""

    __slots__ = ("id", "heap", "offset", "size", "parent", "dirty", "freed", "ready_at")

    def __init__(self, heap: "Heap", offset: int, size: int) -> None:
        self.id = _region_ids()
        self.heap = heap
        self.offset = offset
        self.size = size
        self.parent: MemObject | None = None
        self.dirty = False
        self.freed = False
        # Virtual time at which in-flight (asynchronous) data movement into
        # this region completes; 0.0 means the contents are ready now.
        self.ready_at = 0.0

    @property
    def device_name(self) -> str:
        return self.heap.name

    @property
    def is_primary(self) -> bool:
        return self.parent is not None and self.parent.primary is self

    def check_live(self) -> None:
        if self.freed:
            raise RegionStateError(f"{self!r} was already freed")

    def __repr__(self) -> str:
        owner = f" of obj#{self.parent.id}" if self.parent is not None else ""
        state = "freed" if self.freed else ("dirty" if self.dirty else "clean")
        return (
            f"Region#{self.id}({self.device_name}@{self.offset:#x}, "
            f"{self.size} B, {state}{owner})"
        )


class MemObject:
    """A logical datum: a size, a primary region, and linked secondaries."""

    __slots__ = ("id", "size", "name", "retired", "pin_count", "_regions", "_primary")

    def __init__(self, size: int, name: str = "") -> None:
        if size <= 0:
            raise ObjectStateError(f"object size must be positive, got {size}")
        self.id = _object_ids()
        self.size = size
        self.name = name or f"obj{self.id}"
        self.retired = False
        self.pin_count = 0
        self._regions: dict[str, Region] = {}
        self._primary: Region | None = None

    # -- state queries ------------------------------------------------------

    @property
    def primary(self) -> Region | None:
        return self._primary

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    def regions(self) -> Iterator[Region]:
        """All regions currently backing this object (primary included)."""
        return iter(list(self._regions.values()))

    def region_on(self, device_name: str) -> Region | None:
        return self._regions.get(device_name)

    def check_usable(self) -> None:
        if self.retired:
            raise ObjectStateError(f"{self!r} was retired and cannot be used")

    # -- attachment (called only by the DataManager) --------------------------

    def attach(self, region: Region, *, primary: bool) -> None:
        region.check_live()
        if region.parent is not None and region.parent is not self:
            raise LinkError(f"{region!r} already belongs to {region.parent!r}")
        existing = self._regions.get(region.device_name)
        if existing is not None and existing is not region:
            raise LinkError(
                f"{self!r} already has a region on {region.device_name!r}"
            )
        if (
            primary
            and self.pinned
            and self._primary is not None
            and self._primary is not region
        ):
            # Validate before any mutation so a rejected attach leaves the
            # object untouched.
            raise ObjectStateError(
                f"cannot change primary of pinned {self!r} (a kernel holds it)"
            )
        region.parent = self
        self._regions[region.device_name] = region
        if primary:
            self._primary = region

    def detach(self, region: Region) -> None:
        if self._regions.get(region.device_name) is not region:
            raise LinkError(f"{region!r} is not attached to {self!r}")
        if region is self._primary:
            if self.pinned:
                raise ObjectStateError(
                    f"cannot detach primary of pinned {self!r} (a kernel holds it)"
                )
            self._primary = None
        del self._regions[region.device_name]
        region.parent = None

    # -- pinning --------------------------------------------------------------

    def pin(self) -> None:
        """Freeze the primary for the duration of a kernel."""
        self.check_usable()
        if self._primary is None:
            raise ObjectStateError(f"cannot pin {self!r}: it has no primary region")
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise ObjectStateError(f"unbalanced unpin of {self!r}")
        self.pin_count -= 1

    def __repr__(self) -> str:
        where = self._primary.device_name if self._primary is not None else "nowhere"
        flags = "retired " if self.retired else ""
        return f"MemObject#{self.id}({self.name!r}, {self.size} B, {flags}primary on {where})"
