"""A multi-tier generalisation of the reference policy.

Section VI argues the framework extends beyond DRAM+NVRAM pairs — "other
heterogeneous memory devices such as local/remote memory (e.g., CXL)" — and
that "the user-defined policy does not have to be modified" when the
platform changes. :class:`MultiTierPolicy` demonstrates both: it drives any
*ordered chain* of devices (e.g. ``["DRAM", "CXL", "NVRAM"]``) with the same
Listing-1/Listing-2 building blocks, demoting eviction victims one tier down
(cascading recursively when the middle tiers are full) and promoting
written/used objects to the top.

Tier invariants (checked by ``check_invariant``):

* an object's primary is its *highest* (fastest) region; linked copies may
  trail on lower tiers;
* a region on any tier above the bottom is always its object's primary
  (the two-tier policy invariant, applied per level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manager import DataManager
from repro.core.object import MemObject, Region
from repro.core.policy_api import AccessIntent, Policy
from repro.errors import ConfigurationError, OutOfMemoryError, PolicyError
from repro.policies.base import emit_decision, evict_object, prefetch_object
from repro.policies.lru import LruTracker
from repro.telemetry import trace as tracing
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["MultiTierPolicy", "TierStats"]


@dataclass
class TierStats:
    """Per-tier movement counters, mirrored into the metrics registry."""

    demotions: dict[str, int] = field(default_factory=dict)
    promotions: dict[str, int] = field(default_factory=dict)
    placed: dict[str, int] = field(default_factory=dict)
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def _named(self) -> tuple[tuple[str, dict[str, int]], ...]:
        return (
            ("policy.demotions", self.demotions),
            ("policy.promotions", self.promotions),
            ("policy.placed", self.placed),
        )

    def attach(self, registry: MetricsRegistry) -> None:
        """Mirror counters into ``registry`` (pre-bind counts carry over)."""
        self._registry = registry
        for name, counter in self._named():
            for tier, count in counter.items():
                registry.counter(name, tier=tier).value += count

    def bump(self, counter: dict[str, int], tier: str) -> None:
        counter[tier] = counter.get(tier, 0) + 1
        if self._registry is not None:
            for name, candidate in self._named():
                if candidate is counter:
                    self._registry.counter(name, tier=tier).inc()
                    break

    def as_dict(self) -> dict[str, int]:
        """Flattened counters (the executor's policy_stats interface)."""
        out: dict[str, int] = {}
        for prefix, counter in (
            ("demotions_to", self.demotions),
            ("promotions_to", self.promotions),
            ("placed_in", self.placed),
        ):
            for tier, count in counter.items():
                out[f"{prefix}_{tier}"] = count
        return out


class MultiTierPolicy(Policy):
    """LRU tiering over an ordered device chain, fastest first."""

    def __init__(self, tiers: list[str], *, promote_on_use: bool = False) -> None:
        super().__init__()
        if len(tiers) < 2:
            raise ConfigurationError("need at least two tiers")
        if len(set(tiers)) != len(tiers):
            raise ConfigurationError(f"duplicate tiers in {tiers}")
        self.tiers = list(tiers)
        self.promote_on_use = promote_on_use
        self.lru: dict[str, LruTracker] = {tier: LruTracker() for tier in tiers}
        self.stats = TierStats()

    def on_bound(self) -> None:
        devices = self.manager.devices()
        missing = [tier for tier in self.tiers if tier not in devices]
        if missing:
            raise ConfigurationError(f"tiers {missing} not among devices {devices}")

    # -- helpers ---------------------------------------------------------------

    def _tier_index(self, device: str) -> int:
        try:
            return self.tiers.index(device)
        except ValueError:
            raise PolicyError(f"device {device!r} is not a managed tier") from None

    def _primary_tier(self, obj: MemObject) -> int:
        primary = obj.primary
        if primary is None:
            raise PolicyError(f"{obj!r} has no primary region")
        return self._tier_index(primary.device_name)

    def _touch(self, obj: MemObject) -> None:
        if obj.primary is not None:
            self.lru[obj.primary.device_name].touch(obj)

    def _discard_everywhere(self, obj: MemObject) -> None:
        for tracker in self.lru.values():
            tracker.discard(obj)

    # -- placement ----------------------------------------------------------------

    def place(self, obj: MemObject) -> Region:
        """New objects are born as high as room can be made."""
        for index, tier in enumerate(self.tiers):
            region = self._allocate_in_tier(index, obj.size)
            if region is not None:
                self.manager.setprimary(obj, region)
                self.lru[tier].touch(obj)
                self.stats.bump(self.stats.placed, tier)
                if self.tracer.enabled:
                    self.tracer.emit(
                        tracing.PLACE, obj=obj.name, device=tier, nbytes=obj.size
                    )
                return region
        bottom = self.tiers[-1]
        raise OutOfMemoryError(bottom, obj.size, self.manager.free_bytes(bottom))

    def _allocate_in_tier(self, index: int, size: int) -> Region | None:
        """Allocate in tier ``index``, demoting victims downward if needed."""
        tier = self.tiers[index]
        region = self.manager.try_allocate(tier, size)
        if region is not None:
            return region
        if index == len(self.tiers) - 1:
            return None  # bottom tier: nothing below to demote into
        start = self._find_eviction_start(index, size)
        if start is None:
            return None
        try:
            self.manager.evictfrom(
                tier, start, size, lambda r: self._demote_region(r, index)
            )
        except OutOfMemoryError:
            return None
        return self.manager.try_allocate(tier, size)

    def _find_eviction_start(self, index: int, size: int) -> Region | None:
        tier = self.tiers[index]
        traced = self.tracer.enabled
        rejected: list[dict] | None = [] if traced else None
        considered = 0
        for rank, candidate in self.lru[tier].ranked():
            considered += 1
            primary = candidate.primary
            if primary is None or primary.device_name != tier:
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "not_resident_tier"}
                    )
                continue
            if candidate.pinned:
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "pinned"}
                    )
                continue
            victims = self.manager.span_victims(tier, primary, size)
            if victims is None:
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "no_contiguous_span"}
                    )
                continue
            if any(v.parent is not None and v.parent.pinned for v in victims):
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "span_pinned"}
                    )
                continue
            if rejected is not None:
                emit_decision(
                    self.tracer,
                    policy=type(self).__name__,
                    device=tier,
                    need=size,
                    chosen=candidate.name,
                    rank=rank,
                    tier=index,
                    rejected=rejected,
                    considered=considered,
                )
            return primary
        if rejected is not None:
            emit_decision(
                self.tracer,
                policy=type(self).__name__,
                device=tier,
                need=size,
                chosen="",
                tier=index,
                rejected=rejected,
                considered=considered,
            )
        return None

    def _demote_region(self, region: Region, index: int) -> None:
        """Evict one region's object from tier ``index`` to ``index + 1``."""
        obj = self.manager.parent(region)
        if obj.pinned:
            raise PolicyError(f"asked to demote pinned {obj!r}")
        below = self.tiers[index + 1]
        # Make room below first (may cascade further down).
        linked = self.manager.getlinked(region, below)
        if linked is None:
            room = self._allocate_in_tier(index + 1, region.size)
            if room is None:
                raise OutOfMemoryError(
                    below, region.size, self.manager.free_bytes(below)
                )
            # evict_object allocates for itself; release the probe.
            self.manager.free(room)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                tracing.EVICT,
                obj=obj.name,
                src=self.tiers[index],
                dst=below,
                nbytes=obj.size,
                clean=linked is not None and not self.manager.isdirty(region),
            )
            with tracer.scope("evict", obj):
                evicted = evict_object(self.manager, obj, self.tiers[index], below)
        elif tracer.monitoring:
            monitor = tracer.monitor
            monitor.note_evict(tracer.clock.now, obj.name, obj.size)
            # See OptimizingPolicy._evict_region: demotion writebacks are
            # attributed "evict" via the monitor's copy_cause string, the
            # cheap tier's stand-in for attribution scopes.
            prev = monitor.copy_cause
            monitor.copy_cause = "evict"
            try:
                evicted = evict_object(
                    self.manager, obj, self.tiers[index], below
                )
            finally:
                monitor.copy_cause = prev
        else:
            evicted = evict_object(self.manager, obj, self.tiers[index], below)
        if evicted:
            self.stats.bump(self.stats.demotions, below)
        self.lru[self.tiers[index]].discard(obj)
        self.lru[below].touch(obj)

    # -- hints ------------------------------------------------------------------------

    def will_use(self, obj: MemObject) -> None:
        self._touch(obj)
        if self.promote_on_use:
            self._promote(obj)

    def will_write(self, obj: MemObject) -> None:
        self._touch(obj)
        self._promote(obj)

    def archive(self, obj: MemObject) -> None:
        if obj.primary is not None:
            self.lru[obj.primary.device_name].demote(obj)

    def retire(self, obj: MemObject) -> None:
        self._discard_everywhere(obj)
        self.manager.destroy_object(obj)

    # -- residency ---------------------------------------------------------------------

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        obj.check_usable()
        if intent is AccessIntent.WRITE:
            self._promote(obj)
        self._touch(obj)
        return self.manager.getprimary(obj)

    def _promote(self, obj: MemObject) -> Region | None:
        """Move the object's primary to the top tier, best effort."""
        current = self._primary_tier(obj)
        if current == 0:
            return obj.primary
        top = self.tiers[0]
        region = prefetch_object(
            self.manager,
            obj,
            top,
            self.tiers[current],
            force=True,
            find_start=lambda size: self._find_eviction_start(0, size),
            evict_callback=lambda r: self._demote_region(r, 0),
        )
        if region is not None and region.device_name == top:
            self.lru[self.tiers[current]].discard(obj)
            self.lru[top].touch(obj)
            self.stats.bump(self.stats.promotions, top)
            if self.tracer.enabled:
                self.tracer.emit(
                    tracing.PREFETCH,
                    obj=obj.name,
                    src=self.tiers[current],
                    dst=top,
                    nbytes=obj.size,
                )
            elif self.tracer.monitoring:
                self.tracer.monitor.note_prefetch(
                    self.tracer.clock.now, obj.name, obj.size
                )
        return region

    # -- recovery (docs/robustness.md) -----------------------------------------------

    def handle_pressure(self, device: str, nbytes: int) -> bool:
        """Ladder rung: demote a contiguous span of ``device`` one tier down."""
        try:
            index = self._tier_index(device)
        except PolicyError:
            return False
        if index == len(self.tiers) - 1:
            return False  # bottom tier: nowhere to demote to
        start = self._find_eviction_start(index, nbytes)
        if start is None:
            return False
        try:
            self.manager.evictfrom(
                device, start, nbytes, lambda r: self._demote_region(r, index)
            )
        except OutOfMemoryError:
            return False
        return True

    # -- validation ----------------------------------------------------------------------

    def check_invariant(self) -> None:
        for obj in self.manager.objects.values():
            primary = obj.primary
            if primary is None:
                continue
            primary_tier = self._tier_index(primary.device_name)
            for region in obj.regions():
                tier = self._tier_index(region.device_name)
                if tier < primary_tier:
                    raise PolicyError(
                        f"{obj!r}: non-primary {region!r} above the primary tier"
                    )
