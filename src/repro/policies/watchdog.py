"""The policy watchdog: survive a misbehaving policy instead of crashing.

Policies are *user code* in the CachedArrays model — the framework promises
that a policy bug degrades performance, not correctness. The
:class:`PolicyWatchdog` enforces that promise at runtime. It wraps any
policy and:

* catches :class:`~repro.errors.PolicyError` escaping each policy operation
  (and post-checks the placement contract: ``place``/``ensure_resident``
  must return the object's live primary region);
* records a **strike** per failure (a ``policy_strike`` trace event and a
  ``watchdog.strikes`` metric), then patches the run forward — falling back
  to the static fallback policy for the failed operation;
* after ``max_strikes`` failures, **quarantines** the wrapped policy: a
  ``quarantine`` event fires, an invariant sweep runs, and every subsequent
  operation is routed to the fallback (an
  :class:`~repro.policies.interleave.InterleavePolicy` by default — no
  hints, no movement, no cleverness; slow but safe) for the rest of the run.

Only :class:`PolicyError` is absorbed. :class:`OutOfMemoryError` is a
pressure signal the escalation ladder owns, and state errors
(``RegionStateError`` etc.) indicate corrupted bookkeeping that must abort —
see the taxonomy in :mod:`repro.errors`.
"""

from __future__ import annotations

from repro.core.object import MemObject, Region
from repro.core.policy_api import AccessIntent, DelegatingPolicy, Policy
from repro.errors import PolicyError
from repro.telemetry import trace as tracing

__all__ = ["PolicyWatchdog"]


class PolicyWatchdog(DelegatingPolicy):
    """Strike-and-quarantine wrapper around an untrusted policy."""

    def __init__(
        self,
        inner: Policy,
        *,
        fallback: Policy | None = None,
        max_strikes: int = 3,
    ) -> None:
        super().__init__(inner)
        if max_strikes < 1:
            raise ValueError(f"max_strikes must be >= 1, got {max_strikes}")
        if fallback is None:
            from repro.policies.interleave import InterleavePolicy

            fallback = InterleavePolicy()
        self.fallback = fallback
        self.max_strikes = max_strikes
        self.strikes = 0
        self.quarantined = False
        self.failures: list[str] = []

    def bind(self, manager) -> None:
        super().bind(manager)
        self.fallback.bind(manager)

    # -- strike bookkeeping --------------------------------------------------

    def _strike(self, op: str, error: PolicyError) -> None:
        self.strikes += 1
        self.failures.append(f"{op}: {error}")
        tracer = self.tracer
        # Attribute the strike to the tenant whose operation tripped it, so
        # multi-tenant escalations separate in `repro explain`/flight dumps.
        tenant = getattr(self.manager, "active_tenant", "")
        if tracer.enabled:
            tracer.emit(
                tracing.POLICY_STRIKE,
                op=op,
                strikes=self.strikes,
                error=str(error),
                tenant=tenant,
            )
        elif tracer.monitoring:
            tracer.monitor.note_strike(tracer.clock.now, op, tenant)
        self.manager.metrics.counter("watchdog.strikes").inc()
        if self.strikes >= self.max_strikes and not self.quarantined:
            self.quarantined = True
            if tracer.enabled:
                tracer.emit(
                    tracing.QUARANTINE,
                    policy=type(self.inner).__name__,
                    fallback=type(self.fallback).__name__,
                    strikes=self.strikes,
                )
            elif tracer.monitoring:
                tracer.monitor.note_quarantine(
                    tracer.clock.now, type(self.inner).__name__
                )
            self.manager.metrics.counter("watchdog.quarantines").inc()
            # The quarantined policy may have died mid-operation; make sure
            # it did not leave the mechanism layer inconsistent before the
            # fallback takes over.
            self.manager.check()

    def _check_placement(self, obj: MemObject, region: Region, op: str) -> None:
        """Contract: the returned region is the object's live primary."""
        if region is None or region.freed or obj.primary is not region:
            raise PolicyError(
                f"{op} returned {region!r}, which is not the live primary "
                f"of {obj!r}"
            )

    # -- guarded operations --------------------------------------------------

    def place(self, obj: MemObject) -> Region:
        if self.quarantined:
            return self.fallback.place(obj)
        try:
            region = self.inner.place(obj)
            self._check_placement(obj, region, "place")
            return region
        except PolicyError as error:
            self._strike("place", error)
            if obj.primary is not None and not obj.primary.freed:
                return obj.primary  # the inner policy got far enough
            return self.fallback.place(obj)

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        if self.quarantined:
            return self.fallback.ensure_resident(obj, intent)
        try:
            region = self.inner.ensure_resident(obj, intent)
            self._check_placement(obj, region, "ensure_resident")
            return region
        except PolicyError as error:
            self._strike("ensure_resident", error)
            return self.fallback.ensure_resident(obj, intent)

    def _guard_hint(self, op: str, obj: MemObject) -> None:
        if self.quarantined:
            return  # the static fallback ignores hints by design
        try:
            getattr(self.inner, op)(obj)
        except PolicyError as error:
            self._strike(op, error)  # a dropped hint costs time, not data

    def will_use(self, obj: MemObject) -> None:
        self._guard_hint("will_use", obj)

    def will_read(self, obj: MemObject) -> None:
        self._guard_hint("will_read", obj)

    def will_write(self, obj: MemObject) -> None:
        self._guard_hint("will_write", obj)

    def archive(self, obj: MemObject) -> None:
        self._guard_hint("archive", obj)

    def retire(self, obj: MemObject) -> None:
        if self.quarantined:
            self.fallback.retire(obj)
            return
        try:
            self.inner.retire(obj)
        except PolicyError as error:
            self._strike("retire", error)
            if not obj.retired:
                # Retire affects correctness (the object must actually die);
                # finish the job with the fallback.
                self.fallback.retire(obj)

    def on_kernel_finish(self, read: list[MemObject], wrote: list[MemObject]) -> None:
        if self.quarantined:
            self.fallback.on_kernel_finish(read, wrote)
            return
        try:
            self.inner.on_kernel_finish(read, wrote)
        except PolicyError as error:
            self._strike("on_kernel_finish", error)

    def on_iteration_end(self) -> None:
        if self.quarantined:
            self.fallback.on_iteration_end()
            return
        try:
            self.inner.on_iteration_end()
        except PolicyError as error:
            self._strike("on_iteration_end", error)

    def handle_pressure(self, device: str, nbytes: int) -> bool:
        if self.quarantined:
            return self.fallback.handle_pressure(device, nbytes)
        try:
            return self.inner.handle_pressure(device, nbytes)
        except PolicyError as error:
            self._strike("handle_pressure", error)
            return False

    def check_invariant(self) -> None:
        if self.quarantined:
            return  # the inner policy's invariants no longer govern the run
        super().check_invariant()
