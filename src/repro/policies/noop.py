"""Degenerate policies: single-device placement and placement pinning.

These exist for baselines and sensitivity sweeps:

* :class:`SingleDevicePolicy` — everything lives on one device, no movement
  ever. The NVRAM-only point of Figure 7 (DRAM budget 0) and the DRAM-only
  upper bound both use it.
* :class:`PinnedPolicy` — honours an explicit per-object placement map and
  otherwise behaves like :class:`SingleDevicePolicy`; useful for tests that
  need deterministic layouts.
"""

from __future__ import annotations

from repro.core.object import MemObject, Region
from repro.core.policy_api import AccessIntent, Policy

__all__ = ["SingleDevicePolicy", "PinnedPolicy"]


class SingleDevicePolicy(Policy):
    """Allocate everything on ``device``; never move anything."""

    def __init__(self, device: str) -> None:
        super().__init__()
        self.device = device

    def place(self, obj: MemObject) -> Region:
        region = self.manager.allocate(self.device, obj.size)
        self.manager.setprimary(obj, region)
        return region

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        return self.manager.getprimary(obj)


class PinnedPolicy(SingleDevicePolicy):
    """Place objects per an explicit name -> device map, else the default."""

    def __init__(self, default_device: str, placement: dict[str, str] | None = None):
        super().__init__(default_device)
        self.placement = dict(placement or {})

    def place(self, obj: MemObject) -> Region:
        device = self.placement.get(obj.name, self.device)
        region = self.manager.allocate(device, obj.size)
        self.manager.setprimary(obj, region)
        return region
