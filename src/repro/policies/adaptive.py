"""A frequency-aware, self-adapting eviction policy (Section VI).

The paper's outlook cites DLRM-style workloads whose "locality of the data
changes based on user input" and concludes that "flexibility in the data
movement policy is required" (Hildebrand et al. [15]). Pure LRU mishandles
skewed random reuse: a burst of cold-tail lookups evicts the hot head.

:class:`AdaptivePolicy` extends the reference policy with:

* **decayed access frequency** per object (an exponential moving count,
  halved every ``decay_every`` hint events), and
* **victim scoring** that blends recency rank with frequency:
  ``score = (1 - alpha) * recency + alpha * frequency`` — lowest score is
  evicted first;
* **self-adaptation** of ``alpha``: every eviction is remembered for a
  window; if the object is touched again soon ("eviction regret"), the
  policy shifts weight toward frequency; if evictions stay quiet, it drifts
  back toward recency, which handles the hot set itself shifting.

Everything else — placement, hints, the Listing-1/2 mechanics — is inherited
unchanged, demonstrating the framework's claim that policies are swappable
without touching applications or the data manager.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.object import MemObject, Region
from repro.policies.base import emit_decision
from repro.policies.optimizing import OptimizingPolicy

__all__ = ["AdaptivePolicy"]


class AdaptivePolicy(OptimizingPolicy):
    """Frequency/recency-blended victim selection with regret feedback."""

    def __init__(
        self,
        fast: str | None = "DRAM",
        slow: str = "NVRAM",
        *,
        alpha: float = 0.5,
        alpha_max: float = 0.7,
        alpha_step: float = 0.05,
        regret_window: int = 64,
        protect_window: int = 32,
        decay_every: int = 256,
        **kwargs: object,
    ) -> None:
        super().__init__(fast, slow, **kwargs)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 < alpha_max <= 1.0:
            raise ValueError(f"alpha_max must be in (0, 1], got {alpha_max}")
        # Recency must always retain some weight: a pure-frequency policy
        # evicts low-frequency-but-imminently-needed tensors (fresh
        # activations), which thrashes pipeline workloads.
        self.alpha_max = alpha_max
        self.alpha = min(alpha, alpha_max)
        self.alpha_step = alpha_step
        self.regret_window = regret_window
        # Segmented protection: objects touched within the last
        # ``protect_window`` hint events are never preferred victims —
        # in-flight activations stay resident regardless of their (still
        # tiny) frequency, like SLRU's protected segment.
        self.protect_window = protect_window
        self.decay_every = decay_every
        self._frequency: dict[int, float] = {}
        self._recency_clock = 0
        self._last_touch: dict[int, int] = {}
        self._first_seen: dict[int, int] = {}
        # obj id -> recency_clock at eviction time (bounded FIFO)
        self._recently_evicted: OrderedDict[int, int] = OrderedDict()
        self.regrets = 0
        self.quiet_evictions = 0

    # -- bookkeeping --------------------------------------------------------

    def _note_use(self, obj: MemObject) -> None:
        super()._note_use(obj)
        self._recency_clock += 1
        self._last_touch[obj.id] = self._recency_clock
        self._first_seen.setdefault(obj.id, self._recency_clock)
        self._frequency[obj.id] = self._frequency.get(obj.id, 0.0) + 1.0
        if self._recency_clock % self.decay_every == 0:
            for key in self._frequency:
                self._frequency[key] *= 0.5
        # Regret detection: touching something we just evicted means the
        # victim choice was wrong -> lean more on frequency.
        evicted_at = self._recently_evicted.pop(obj.id, None)
        if evicted_at is not None:
            if self._recency_clock - evicted_at <= self.regret_window:
                self.regrets += 1
                self.alpha = min(self.alpha_max, self.alpha + self.alpha_step)

    def _evict_region(self, region: Region) -> None:
        obj = region.parent
        super()._evict_region(region)
        if obj is not None:
            self._recently_evicted[obj.id] = self._recency_clock
            while len(self._recently_evicted) > 4 * self.regret_window:
                stale_id, _ = self._recently_evicted.popitem(last=False)
                # An eviction that aged out untouched was a good choice ->
                # drift back toward recency.
                self.quiet_evictions += 1
                self.alpha = max(0.0, self.alpha - self.alpha_step / 4)

    def retire(self, obj: MemObject) -> None:
        self._frequency.pop(obj.id, None)
        self._last_touch.pop(obj.id, None)
        self._first_seen.pop(obj.id, None)
        self._recently_evicted.pop(obj.id, None)
        super().retire(obj)

    # -- victim selection -------------------------------------------------------

    def _rate(self, obj_id: int) -> float:
        """Access *rate* (frequency over age): a brand-new object with one
        access is hot, not unpopular — normalising by age avoids evicting
        fresh activations the way raw counts would (the LRFU insight)."""
        age = max(1, self._recency_clock - self._first_seen.get(obj_id, 0) + 1)
        return self._frequency.get(obj_id, 0.0) / age

    def _score(self, obj: MemObject) -> float:
        """Lower = better eviction victim."""
        recency = self._last_touch.get(obj.id, 0) / max(1, self._recency_clock)
        rate = self._rate(obj.id)
        max_rate = max(
            (self._rate(candidate_id) for candidate_id in self._frequency),
            default=1.0,
        )
        frequency = rate / max(max_rate, 1e-12)
        return (1.0 - self.alpha) * recency + self.alpha * frequency

    def _find_eviction_start(self, size: int) -> Region | None:
        assert self.fast is not None
        self.stats.forced_eviction_rounds += 1
        traced = self.tracer.enabled
        candidates = [
            obj
            for obj in self.lru.coldest_first()
            if obj.primary is not None
            and obj.primary.device_name == self.fast
            and not obj.pinned
        ]
        horizon = self._recency_clock - self.protect_window
        probation = [
            c for c in candidates if self._last_touch.get(c.id, 0) <= horizon
        ]
        protected = [
            c for c in candidates if self._last_touch.get(c.id, 0) > horizon
        ]
        probation.sort(key=self._score)
        # Protected objects are last-resort victims, oldest-touch first.
        protected.sort(key=lambda c: self._last_touch.get(c.id, 0))
        candidates = probation + protected
        rejected: list[dict] | None = None
        segments: dict[int, str] | None = None
        if traced:
            # The pre-filter above silently dropped off-device/pinned objects;
            # surface those in the decision record too so the trace answers
            # "why was X never even scored?".
            rejected = []
            for rank, obj in self.lru.ranked():
                primary = obj.primary
                if primary is None or primary.device_name != self.fast:
                    rejected.append(
                        {"obj": obj.name, "rank": rank,
                         "reason": "not_resident_fast"}
                    )
                elif obj.pinned:
                    rejected.append(
                        {"obj": obj.name, "rank": rank, "reason": "pinned"}
                    )
            segments = {c.id: "probation" for c in probation}
            segments.update({c.id: "protected" for c in protected})
        considered = len(rejected) if rejected is not None else 0
        for candidate in candidates:
            considered += 1
            primary = candidate.primary
            assert primary is not None
            victims = self.manager.span_victims(self.fast, primary, size)
            entry: dict | None = None
            if rejected is not None and segments is not None:
                entry = {
                    "obj": candidate.name,
                    "score": self._score(candidate),
                    "segment": segments[candidate.id],
                }
            if victims is None:
                if entry is not None:
                    entry["reason"] = "no_contiguous_span"
                    rejected.append(entry)
                continue
            if any(v.parent is not None and v.parent.pinned for v in victims):
                if entry is not None:
                    entry["reason"] = "span_pinned"
                    rejected.append(entry)
                continue
            if rejected is not None and entry is not None:
                emit_decision(
                    self.tracer,
                    policy=type(self).__name__,
                    device=self.fast,
                    need=size,
                    chosen=candidate.name,
                    score=entry["score"],
                    segment=entry["segment"],
                    alpha=self.alpha,
                    probation=len(probation),
                    protected=len(protected),
                    rejected=rejected,
                    considered=considered,
                )
            return primary
        if rejected is not None:
            emit_decision(
                self.tracer,
                policy=type(self).__name__,
                device=self.fast,
                need=size,
                chosen="",
                alpha=self.alpha,
                probation=len(probation),
                protected=len(protected),
                rejected=rejected,
                considered=considered,
            )
        return None
