"""OS-style NUMA interleave baseline.

Section IV-A notes App-Direct mode "can either be configured as an extra
NUMA node to be used automatically by the OS, or mounted as a DAX file
system". The former is what Linux's default NUMA policies would do with
NVRAM: spread (or first-touch) pages across nodes with *no* migration and
*no* knowledge of future use — exactly the transparent baseline the paper's
related work (Table I, "Operating System" row) covers.

:class:`InterleavePolicy` models it at object granularity: placement
round-robins across devices weighted by capacity, hints are ignored
(the OS never sees them), and nothing ever moves.
"""

from __future__ import annotations

from repro.core.manager import DataManager
from repro.core.object import MemObject, Region
from repro.core.policy_api import AccessIntent, Policy
from repro.errors import ConfigurationError, OutOfMemoryError

__all__ = ["InterleavePolicy", "FirstTouchPolicy"]


class InterleavePolicy(Policy):
    """Capacity-weighted round-robin placement; no movement, no hints."""

    def __init__(self, devices: list[str] | None = None) -> None:
        super().__init__()
        self.devices = list(devices) if devices else None
        self._weights: list[tuple[str, int]] = []
        self._cursor = 0
        self._credit: dict[str, int] = {}

    def on_bound(self) -> None:
        names = self.devices or self.manager.devices()
        missing = [n for n in names if n not in self.manager.devices()]
        if missing:
            raise ConfigurationError(f"unknown devices {missing}")
        self._weights = [
            (name, self.manager.heap(name).capacity) for name in names
        ]
        self._credit = {name: 0 for name in names}

    def place(self, obj: MemObject) -> Region:
        """Weighted round-robin: each device gets traffic in proportion to
        its capacity (what `interleave=all` converges to), falling back to
        whichever device still has room."""
        total = sum(weight for _, weight in self._weights)
        for name, weight in self._weights:
            self._credit[name] += weight
        order = sorted(
            self._weights, key=lambda item: self._credit[item[0]], reverse=True
        )
        for name, _ in order:
            region = self.manager.try_allocate(name, obj.size)
            if region is not None:
                self._credit[name] -= total
                self.manager.setprimary(obj, region)
                return region
        fullest = order[0][0]
        raise OutOfMemoryError(fullest, obj.size, self.manager.free_bytes(fullest))

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        return self.manager.getprimary(obj)

    # The OS sees no hints: all Table II operations are no-ops except
    # retire, which is just free().


class FirstTouchPolicy(Policy):
    """NUMA first-touch: fill the first (local) node, then spill onward."""

    def __init__(self, order: list[str] | None = None) -> None:
        super().__init__()
        self.order = list(order) if order else None

    def on_bound(self) -> None:
        if self.order is None:
            self.order = self.manager.devices()

    def place(self, obj: MemObject) -> Region:
        assert self.order is not None
        for name in self.order:
            region = self.manager.try_allocate(name, obj.size)
            if region is not None:
                self.manager.setprimary(obj, region)
                return region
        last = self.order[-1]
        raise OutOfMemoryError(last, obj.size, self.manager.free_bytes(last))

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        return self.manager.getprimary(obj)
