"""Data-movement policies.

The paper evaluates one policy family with three independently toggleable
optimisations (Section IV):

* **L** — local temporary allocations: new arrays may be born directly in
  fast memory instead of NVRAM-first;
* **M** — memory optimisations: eager ``retire`` instead of relying on the
  garbage collector (this toggle lives in the *trace annotation*, see
  :mod:`repro.workloads.annotate`, but is surfaced in the mode names);
* **P** — prefetching: ``will_read`` pulls objects into fast memory ahead of
  the kernel.

:mod:`repro.policies.base` contains ``evict_object`` and ``prefetch_object``
— direct transcriptions of the paper's Listings 1 and 2 against the
data-management API. :class:`~repro.policies.optimizing.OptimizingPolicy`
composes them with LRU victim selection.
"""

from repro.policies.base import evict_object, prefetch_object
from repro.policies.lru import LruTracker
from repro.policies.noop import PinnedPolicy, SingleDevicePolicy
from repro.policies.optimizing import OptimizingPolicy
from repro.policies.adaptive import AdaptivePolicy
from repro.policies.multitier import MultiTierPolicy
from repro.policies.interleave import FirstTouchPolicy, InterleavePolicy
from repro.policies.modes import ModeConfig, MODES, mode

__all__ = [
    "evict_object",
    "prefetch_object",
    "LruTracker",
    "PinnedPolicy",
    "SingleDevicePolicy",
    "OptimizingPolicy",
    "AdaptivePolicy",
    "MultiTierPolicy",
    "InterleavePolicy",
    "FirstTouchPolicy",
    "ModeConfig",
    "MODES",
    "mode",
]
