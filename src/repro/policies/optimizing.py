"""The paper's reference policy for DRAM+NVRAM CNN training.

One policy class with the Section IV toggles:

* ``local_alloc`` (**L**): new objects are born in fast memory when room can
  be made; disabled, every object is born in NVRAM and migrated to DRAM
  before use, "effectively generating a compulsory miss on first access ...
  to more closely model the behaviour of 2LM" (CA: ∅).
* ``prefetch`` (**P**): ``will_read`` pulls the object into DRAM ahead of the
  kernel. Off, reads execute from wherever the object lives — NVRAM read
  bandwidth is high enough that this is often the right call (Section III-D).

Independent of the toggles, the policy:

* responds to ``will_write`` / write-intent residency by migrating the target
  into DRAM (NVRAM writes are slow and low-bandwidth);
* keeps evicted-then-prefetched objects *linked* to their NVRAM copy so
  clean evictions are free;
* reacts to ``archive`` by demoting the object in the LRU order (no eager
  data movement — "a reasonable policy implementation will not eagerly evict
  data upon an archive annotation");
* maintains the invariant that a fast-memory region is always its object's
  primary.
"""

from __future__ import annotations

from repro.core.manager import DataManager
from repro.core.object import MemObject, Region
from repro.core.policy_api import AccessIntent, Policy
from repro.errors import ConfigurationError, OutOfMemoryError, PolicyError
from repro.policies.base import emit_decision, evict_object, prefetch_object
from repro.policies.lru import LruTracker
from repro.telemetry import trace as tracing
from repro.telemetry.metrics import Counter, MetricsRegistry

__all__ = ["OptimizingPolicy", "PolicyStats"]


class PolicyStats:
    """Observable policy behaviour, for reports and regression tests.

    Attribute access works exactly like the old plain-int dataclass
    (``stats.evictions += 1``), but each field is backed by a telemetry
    :class:`Counter`. When the policy binds to a session, :meth:`attach`
    re-homes the counters into the session's :class:`MetricsRegistry` under
    ``policy.*`` names, so reports read one flat namespace instead of
    scattered per-policy dicts.
    """

    FIELDS = (
        "placed_fast",
        "placed_slow",
        "prefetches",
        "evictions",
        "elided_writebacks",  # clean evictions that skipped the copy
        "forced_eviction_rounds",
        "retires",
    )

    def __init__(self) -> None:
        object.__setattr__(
            self, "_counters", {name: Counter() for name in self.FIELDS}
        )

    def attach(self, registry: MetricsRegistry) -> None:
        """Back the fields with registry counters (pre-bind counts carry over)."""
        counters = self._counters
        for name in self.FIELDS:
            shared = registry.counter(f"policy.{name}")
            shared.value += counters[name].value
            counters[name] = shared

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        try:
            return counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        counter = self._counters.get(name)
        if counter is None:
            object.__setattr__(self, name, value)
        else:
            counter.value = value

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"PolicyStats({fields})"

    def as_dict(self) -> dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}


class OptimizingPolicy(Policy):
    """LRU policy with the L and P toggles over a fast/slow device pair."""

    def __init__(
        self,
        fast: str | None = "DRAM",
        slow: str = "NVRAM",
        *,
        local_alloc: bool = True,
        prefetch: bool = False,
        migrate_on_write: bool = True,
    ) -> None:
        super().__init__()
        if fast == slow:
            raise ConfigurationError("fast and slow must be different devices")
        self.fast = fast
        self.slow = slow
        self.local_alloc = local_alloc
        self.prefetch = prefetch
        self.migrate_on_write = migrate_on_write
        self.lru = LruTracker()
        self.stats = PolicyStats()

    def on_bound(self) -> None:
        devices = self.manager.devices()
        if self.slow not in devices:
            raise ConfigurationError(f"slow device {self.slow!r} not in {devices}")
        if self.fast is not None and self.fast not in devices:
            raise ConfigurationError(f"fast device {self.fast!r} not in {devices}")

    # -- placement ------------------------------------------------------------

    def place(self, obj: MemObject) -> Region:
        """First allocation for a new object.

        With **L**: fast memory first (forcing eviction if needed), NVRAM as
        the fallback for objects that cannot fit. Without **L**: always
        NVRAM — the compulsory-miss model of CA: ∅.
        """
        if self.fast is not None and self.local_alloc:
            region = self._allocate_fast(obj.size, force=True)
            if region is not None:
                self.manager.setprimary(obj, region)
                self.lru.touch(obj)
                self.stats.placed_fast += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        tracing.PLACE,
                        obj=obj.name,
                        device=region.device_name,
                        nbytes=obj.size,
                    )
                return region
        region = self.manager.allocate(self.slow, obj.size)
        self.manager.setprimary(obj, region)
        self.stats.placed_slow += 1
        if self.tracer.enabled:
            self.tracer.emit(
                tracing.PLACE, obj=obj.name, device=self.slow, nbytes=obj.size
            )
        return region

    # -- hints ------------------------------------------------------------------

    def will_use(self, obj: MemObject) -> None:
        self._note_use(obj)

    def will_read(self, obj: MemObject) -> None:
        self._note_use(obj)
        if self.prefetch and self.fast is not None:
            if self._prefetch(obj, force=True) is not None:
                self.stats.prefetches += 1

    def will_write(self, obj: MemObject) -> None:
        self._note_use(obj)
        if self.migrate_on_write and self.fast is not None:
            self._prefetch(obj, force=True)

    def archive(self, obj: MemObject) -> None:
        """No data movement — just make the object the preferred victim."""
        if obj.primary is not None and obj.primary.device_name == self.fast:
            self.lru.demote(obj)

    def retire(self, obj: MemObject) -> None:
        self.lru.discard(obj)
        self.manager.destroy_object(obj)
        self.stats.retires += 1

    def _note_use(self, obj: MemObject) -> None:
        if obj.primary is not None and obj.primary.device_name == self.fast:
            self.lru.touch(obj)

    # -- residency ----------------------------------------------------------------

    def ensure_resident(self, obj: MemObject, intent: AccessIntent) -> Region:
        """Make the object usable for a kernel about to pin it.

        * write intent: migrate into fast memory (best effort);
        * read/use intent: migrate only in cache-like mode (no **L**) —
          with **L**, reads run from NVRAM unless **P** prefetched earlier.
        """
        obj.check_usable()
        primary = self.manager.getprimary(obj)
        if self.fast is None:
            return primary
        cache_like = not self.local_alloc
        wants_fast = (
            cache_like
            or (intent is AccessIntent.WRITE and self.migrate_on_write)
        )
        if wants_fast and primary.device_name == self.slow:
            moved = self._prefetch(obj, force=True)
            if moved is not None:
                return moved
        self._note_use(obj)
        return self.manager.getprimary(obj)

    # -- movement internals -----------------------------------------------------------

    def _prefetch(self, obj: MemObject, *, force: bool) -> Region | None:
        assert self.fast is not None
        was_slow = (
            obj.primary is not None and obj.primary.device_name == self.slow
        )
        region = prefetch_object(
            self.manager,
            obj,
            self.fast,
            self.slow,
            force=force,
            find_start=self._find_eviction_start,
            evict_callback=self._evict_region,
        )
        if region is not None and region.device_name == self.fast:
            self.lru.touch(obj)
            if was_slow and self.tracer.enabled:
                # An actual slow->fast move, not a no-op on already-fast data.
                self.tracer.emit(
                    tracing.PREFETCH,
                    obj=obj.name,
                    src=self.slow,
                    dst=self.fast,
                    nbytes=obj.size,
                )
            elif was_slow and self.tracer.monitoring:
                self.tracer.monitor.note_prefetch(
                    self.tracer.clock.now, obj.name, obj.size
                )
        return region

    def _allocate_fast(self, size: int, *, force: bool) -> Region | None:
        """Allocate raw space in fast memory, evicting cold objects if asked."""
        assert self.fast is not None
        region = self.manager.try_allocate(self.fast, size)
        if region is not None or not force:
            return region
        start = self._find_eviction_start(size)
        if start is None:
            return None
        try:
            self.manager.evictfrom(self.fast, start, size, self._evict_region)
        except OutOfMemoryError:
            return None
        return self.manager.try_allocate(self.fast, size)

    def _find_eviction_start(self, size: int) -> Region | None:
        """Listing 2's ``find_region``: coldest unpinned object whose span is
        clear of pinned operands.

        When tracing is on, the scan doubles as an explainability source: it
        emits one ``decision`` event recording the chosen victim *and* every
        candidate it skipped, with the reason (not resident in fast memory,
        pinned, no contiguous span, span holds a pinned operand) and its
        recency rank. The untraced path builds none of that.
        """
        assert self.fast is not None
        self.stats.forced_eviction_rounds += 1
        traced = self.tracer.enabled
        rejected: list[dict] | None = [] if traced else None
        considered = 0
        for rank, candidate in self.lru.ranked():
            considered += 1
            primary = candidate.primary
            if primary is None or primary.device_name != self.fast:
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "not_resident_fast"}
                    )
                continue
            if candidate.pinned:
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "pinned"}
                    )
                continue
            victims = self.manager.span_victims(self.fast, primary, size)
            if victims is None:
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "no_contiguous_span"}
                    )
                continue
            if any(v.parent is not None and v.parent.pinned for v in victims):
                if rejected is not None:
                    rejected.append(
                        {"obj": candidate.name, "rank": rank,
                         "reason": "span_pinned"}
                    )
                continue
            if rejected is not None:
                emit_decision(
                    self.tracer,
                    policy=type(self).__name__,
                    device=self.fast,
                    need=size,
                    chosen=candidate.name,
                    rank=rank,
                    rejected=rejected,
                    considered=considered,
                )
            return primary
        if rejected is not None:
            emit_decision(
                self.tracer,
                policy=type(self).__name__,
                device=self.fast,
                need=size,
                chosen="",
                rejected=rejected,
                considered=considered,
            )
        return None

    def _evict_region(self, region: Region) -> None:
        """``evictfrom`` callback: evict the region's whole object."""
        assert self.fast is not None
        obj = self.manager.parent(region)
        if obj.pinned:
            raise PolicyError(f"asked to evict pinned {obj!r}")
        was_clean = not self.manager.isdirty(region) and (
            self.manager.getlinked(region, self.slow) is not None
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                tracing.EVICT,
                obj=obj.name,
                src=self.fast,
                dst=self.slow,
                nbytes=obj.size,
                clean=was_clean,
            )
            with tracer.scope("evict", obj):
                evicted = evict_object(self.manager, obj, self.fast, self.slow)
        elif tracer.monitoring:
            monitor = tracer.monitor
            monitor.note_evict(tracer.clock.now, obj.name, obj.size)
            # Cheap stand-in for the full tier's `with tracer.scope("evict")`:
            # the writeback copy evict_object performs lands in the monitor's
            # by-cause rollup under "evict". Restored (not cleared) so
            # cascaded demotions keep the outer attribution.
            prev = monitor.copy_cause
            monitor.copy_cause = "evict"
            try:
                evicted = evict_object(self.manager, obj, self.fast, self.slow)
            finally:
                monitor.copy_cause = prev
        else:
            evicted = evict_object(self.manager, obj, self.fast, self.slow)
        if evicted:
            self.stats.evictions += 1
            if was_clean:
                self.stats.elided_writebacks += 1
        self.lru.discard(obj)

    # -- recovery (docs/robustness.md) ------------------------------------------------

    def handle_pressure(self, device: str, nbytes: int) -> bool:
        """Ladder rung: evict a contiguous ``nbytes`` span of fast memory.

        Only fast-memory pressure is actionable: on the slow device the
        policy has nowhere to evict *to*, so it declines and lets the ladder
        fall through to defragmentation and cross-tier fallback.
        """
        if self.fast is None or device != self.fast:
            return False
        start = self._find_eviction_start(nbytes)
        if start is None:
            return False
        try:
            self.manager.evictfrom(self.fast, start, nbytes, self._evict_region)
        except OutOfMemoryError:
            return False
        return True

    # -- bookkeeping ----------------------------------------------------------------------

    def on_kernel_finish(self, read: list[MemObject], wrote: list[MemObject]) -> None:
        for obj in read:
            self._note_use(obj)
        for obj in wrote:
            self._note_use(obj)
            primary = obj.primary
            if primary is not None:
                # A written primary invalidates any linked secondary.
                self.manager.setdirty(primary, True)

    def check_invariant(self) -> None:
        """Paper's policy invariant: any fast-memory region is a primary."""
        if self.fast is None:
            return
        for region in self.manager.regions_on(self.fast):
            if region.parent is not None and not region.is_primary:
                raise PolicyError(
                    f"invariant violated: {region!r} in fast memory is secondary"
                )
