"""The six operating modes of Section IV.

==========  ========  ======================  ==============================
Mode        System    Policy toggles          Trace annotation
==========  ========  ======================  ==============================
``2LM:0``   2LM       (hardware cache)        GC-managed frees
``2LM:M``   2LM       (hardware cache)        eager ``retire``
``CA:0``    CA        no L, no P              GC-managed frees
``CA:L``    CA        L                       GC-managed frees
``CA:LM``   CA        L                       eager ``retire``
``CA:LMP``  CA        L, P                    eager ``retire``
==========  ========  ======================  ==============================

The *memory optimisation* (**M**) is an application-side change — retiring
arrays as soon as possible instead of leaving them to the garbage collector —
so it lives in the trace annotation (:mod:`repro.workloads.annotate`), not in
the policy object. ``mode(name)`` resolves the canonical configurations;
empty-set is written ``0`` in code and rendered ``∅`` in reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.policies.optimizing import OptimizingPolicy

__all__ = ["ModeConfig", "MODES", "mode"]


@dataclass(frozen=True)
class ModeConfig:
    """One evaluation mode: which system runs and which optimisations apply."""

    name: str
    system: str  # "ca" or "2lm"
    local_alloc: bool = False
    memopt: bool = False
    prefetch: bool = False

    @property
    def pretty(self) -> str:
        base, _, opts = self.name.partition(":")
        return f"{base}: {'∅' if opts == '0' else opts}"

    def make_policy(self, fast: str | None, slow: str) -> OptimizingPolicy:
        if self.system != "ca":
            raise ConfigurationError(f"mode {self.name!r} does not use a CA policy")
        return OptimizingPolicy(
            fast=fast,
            slow=slow,
            local_alloc=self.local_alloc,
            prefetch=self.prefetch,
        )


MODES: dict[str, ModeConfig] = {
    cfg.name: cfg
    for cfg in (
        ModeConfig("2LM:0", system="2lm"),
        ModeConfig("2LM:M", system="2lm", memopt=True),
        ModeConfig("CA:0", system="ca"),
        ModeConfig("CA:L", system="ca", local_alloc=True),
        ModeConfig("CA:LM", system="ca", local_alloc=True, memopt=True),
        ModeConfig(
            "CA:LMP", system="ca", local_alloc=True, memopt=True, prefetch=True
        ),
    )
}


def mode(name: str) -> ModeConfig:
    """Resolve a mode by name; accepts ``∅`` as a synonym for ``0``."""
    canonical = name.replace("∅", "0").replace(" ", "").upper()
    try:
        return MODES[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown mode {name!r}; known: {sorted(MODES)}"
        ) from None
