"""Eviction and prefetch built from the data-management API.

These two functions are line-for-line transcriptions of the paper's
Listing 1 (``evict``) and Listing 2 (``prefetch``), written against
:class:`~repro.core.manager.DataManager`. They are deliberately free
functions: the listings demonstrate that a policy author needs *only* the
data-management API, and keeping them standalone lets several policies share
them (and lets the tests exercise them in isolation).
"""

from __future__ import annotations

from typing import Callable

from repro.core.manager import DataManager
from repro.core.object import MemObject, Region
from repro.errors import OutOfMemoryError
from repro.telemetry import trace as tracing

__all__ = [
    "evict_object",
    "prefetch_object",
    "emit_decision",
    "DECISION_REJECTED_LIMIT",
]

# Rejected-candidate entries kept per decision event. Victim scans walk the
# whole LRU order, so an unbounded list would make one decision event scale
# with the heap's object count; the first N (coldest first) are the
# candidates the policy most wanted and could not use — the informative ones.
DECISION_REJECTED_LIMIT = 24


def emit_decision(
    tracer,
    *,
    policy: str,
    device: str,
    need: int,
    chosen: str,
    rejected: list[dict],
    considered: int,
    action: str = "select_victim",
    **extra,
) -> None:
    """Emit one structured ``decision`` event (docs/observability.md).

    Records the victim a policy chose (``chosen`` is ``""`` when the scan
    came up empty — the precursor to an OOM/recovery climb) *and* the
    considered-but-rejected candidates with their reasons, so a trace reader
    can answer "why was *this* object evicted and not that one?". Callers
    must already have checked ``tracer.enabled``; the untraced fast path
    never builds the rejected list.
    """
    dropped = 0
    if len(rejected) > DECISION_REJECTED_LIMIT:
        dropped = len(rejected) - DECISION_REJECTED_LIMIT
        rejected = rejected[:DECISION_REJECTED_LIMIT]
    tracer.emit(
        tracing.DECISION,
        policy=policy,
        action=action,
        device=device,
        need=need,
        chosen=chosen,
        considered=considered,
        rejected=rejected,
        rejected_dropped=dropped,
        **extra,
    )


def evict_object(
    dm: DataManager, obj: MemObject, fast: str, slow: str
) -> bool:
    """Move ``obj``'s primary from ``fast`` to ``slow`` (paper Listing 1).

    If a linked (clean) copy already exists in slow memory the expensive
    cross-device copy is elided — the optimisation of Listing 1 lines 11-13.
    Returns True when an eviction actually happened (primary was in fast).
    """
    x = dm.getprimary(obj)
    if not dm.in_device(x, fast):
        return False
    y = dm.getlinked(x, slow)
    sz = dm.sizeof(x)
    allocated = False
    if y is None:
        y = dm.allocate(slow, sz)
        allocated = True
    if dm.isdirty(x) or allocated:
        dm.copyto(y, x)
        dm.setdirty(y, False)
    dm.setprimary(obj, y)
    if not allocated:
        dm.unlink(x, y)
    dm.free(x)
    return True


def prefetch_object(
    dm: DataManager,
    obj: MemObject,
    fast: str,
    slow: str,
    *,
    force: bool = False,
    find_start: Callable[[int], Region | None] | None = None,
    evict_callback: Callable[[Region], None] | None = None,
) -> Region | None:
    """Move ``obj``'s primary from ``slow`` into ``fast`` (paper Listing 2).

    When fast memory is full and ``force`` is set, ``find_start`` picks an
    eviction starting region (the paper suggests an LRU heuristic) and
    ``evictfrom`` frees a contiguous span through ``evict_callback``. The
    slow-memory region stays *linked* as a clean secondary, so a later
    eviction of unmodified data costs nothing.

    Returns the new fast primary, or ``None`` when no room could be made.
    """
    x = dm.getprimary(obj)
    if not dm.in_device(x, slow):
        return dm.getprimary(obj)
    sz = dm.sizeof(obj)
    y = dm.try_allocate(fast, sz)
    if y is None:
        if not force:
            return None
        if find_start is None or evict_callback is None:
            raise OutOfMemoryError(fast, sz, dm.free_bytes(fast))
        start = find_start(sz)
        if start is None:
            return None
        dm.evictfrom(fast, start, sz, evict_callback)
        y = dm.try_allocate(fast, sz)
        if y is None:
            return None
    dm.copyto(y, x)
    dm.setdirty(x, False)
    dm.link(x, y)
    dm.setprimary(obj, y)
    dm.setdirty(y, False)
    return y
