"""Recency tracking for eviction-victim selection.

Listing 2's ``find_region`` selects "an initial region via some heuristic
like LRU". :class:`LruTracker` is that heuristic: an ordered set of objects
from coldest to hottest. ``archive`` demotes an object straight to the cold
end — the paper's "prioritise the annotated objects for future eviction if
memory pressure is experienced" — without moving any data.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.object import MemObject

__all__ = ["LruTracker"]


class LruTracker:
    """Ordered set of objects, coldest first. O(1) touch/demote/discard."""

    def __init__(self) -> None:
        # dict preserves insertion order; values are the objects themselves.
        self._order: dict[int, MemObject] = {}

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, obj: MemObject) -> bool:
        return obj.id in self._order

    def touch(self, obj: MemObject) -> None:
        """Mark ``obj`` most recently used (hot end)."""
        self._order.pop(obj.id, None)
        self._order[obj.id] = obj

    def demote(self, obj: MemObject) -> None:
        """Send ``obj`` to the cold end (the ``archive`` reaction)."""
        self._order.pop(obj.id, None)
        new_order = {obj.id: obj}
        new_order.update(self._order)
        self._order = new_order

    def discard(self, obj: MemObject) -> None:
        self._order.pop(obj.id, None)

    def coldest_first(self) -> Iterator[MemObject]:
        """Objects from coldest to hottest; safe against mutation mid-walk."""
        return iter(list(self._order.values()))

    def ranked(self) -> Iterator[tuple[int, MemObject]]:
        """``(recency_rank, object)`` pairs, coldest first (rank 0 = coldest).

        The rank is the score LRU-family policies report in their
        ``decision`` trace events: it says *why* an object was the preferred
        victim (low rank) or a reluctant one (high rank) at selection time.
        Mutation-safe like :meth:`coldest_first`.
        """
        return enumerate(self.coldest_first())

    def rank_of(self, obj: MemObject) -> int | None:
        """Current recency rank of ``obj`` (``None`` if untracked)."""
        for rank, candidate in self.ranked():
            if candidate.id == obj.id:
                return rank
        return None

    def clear(self) -> None:
        self._order.clear()
