"""A deterministic virtual clock for the memory-system simulation.

All experiment times in this reproduction are *virtual*: kernel execution and
data movement advance the clock by modelled durations, so results are exactly
reproducible and independent of the host machine. The clock also keeps
per-category busy accounting (compute vs. data movement), which Figure 7's
"perfectly asynchronous movement" projection needs: the projected runtime is
``compute + max(0, movement - compute)`` per overlap window, which we bound
with the recorded totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimClock"]


@dataclass(slots=True)
class SimClock:
    """Monotonic virtual clock with per-category busy-time accounting.

    Slotted: ``advance`` runs once per modelled duration (every kernel,
    copy chunk, and stall), so attribute access on ``now``/``_busy`` is a
    measured hot path.
    """

    now: float = 0.0
    _busy: dict[str, float] = field(default_factory=dict)

    def advance(self, seconds: float, category: str = "other") -> float:
        """Advance the clock by ``seconds`` attributed to ``category``.

        Returns the new time. Negative durations are a programming error.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.now += seconds
        self._busy[category] = self._busy.get(category, 0.0) + seconds
        return self.now

    def busy(self, category: str) -> float:
        """Total virtual time attributed to ``category`` so far."""
        return self._busy.get(category, 0.0)

    def categories(self) -> dict[str, float]:
        """A copy of the per-category busy-time map."""
        return dict(self._busy)

    def checkpoint(self) -> "ClockCheckpoint":
        """Snapshot for computing deltas over a window (e.g. one iteration)."""
        return ClockCheckpoint(now=self.now, busy=dict(self._busy))

    def since(self, checkpoint: "ClockCheckpoint") -> "ClockDelta":
        """Elapsed time and per-category busy deltas since ``checkpoint``."""
        busy = {
            key: self._busy.get(key, 0.0) - checkpoint.busy.get(key, 0.0)
            for key in set(self._busy) | set(checkpoint.busy)
        }
        return ClockDelta(elapsed=self.now - checkpoint.now, busy=busy)

    def reset(self) -> None:
        """Rewind to time zero and clear accounting (between experiments)."""
        self.now = 0.0
        self._busy.clear()


@dataclass(frozen=True)
class ClockCheckpoint:
    """Immutable snapshot of a :class:`SimClock`."""

    now: float
    busy: dict[str, float]


@dataclass(frozen=True)
class ClockDelta:
    """Elapsed wall time and per-category busy time over a window."""

    elapsed: float
    busy: dict[str, float]

    def of(self, category: str) -> float:
        return self.busy.get(category, 0.0)
