"""A deterministic virtual clock for the memory-system simulation.

All experiment times in this reproduction are *virtual*: kernel execution and
data movement advance the clock by modelled durations, so results are exactly
reproducible and independent of the host machine. The clock also keeps
per-category busy accounting (compute vs. data movement), which Figure 7's
"perfectly asynchronous movement" projection needs: the projected runtime is
``compute + max(0, movement - compute)`` per overlap window, which we bound
with the recorded totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimClock", "snap_residue"]

# Relative tolerance for floating-point residues in wait arithmetic.
# Accumulated ``ready_at``/``pending_until`` sums can differ from the clock
# by a few ULPs after an advance lands the clock "exactly" on a completion
# time; treating those residues as real waits would charge spurious
# denormal-length stalls. One part in 1e12 is ~4 orders of magnitude above
# double rounding error and ~10 below any modelled duration.
_RESIDUE_RTOL = 1e-12


def snap_residue(wait: float, now: float) -> float:
    """Clamp a float-drift residue ``wait`` (relative to time ``now``) to 0.

    Negative waits and positive waits within rounding error of zero both
    collapse to ``0.0``; genuine waits pass through untouched.
    """
    if wait <= (abs(now) + 1.0) * _RESIDUE_RTOL:
        return 0.0
    return wait


@dataclass(slots=True)
class SimClock:
    """Stream-monotonic virtual clock with per-category busy accounting.

    Slotted: ``advance`` runs once per modelled duration (every kernel,
    copy chunk, and stall), so attribute access on ``now``/``_busy`` is a
    measured hot path.

    With one execution stream (the default) the clock is strictly
    monotonic. Under the multi-stream scheduler
    (:mod:`repro.runtime.scheduler`), ``now`` is the *currently running*
    stream's local time: the scheduler repositions it with :meth:`seek`
    when switching streams, and each stream's own advances remain
    monotonic. ``_stream_busy``, when set by the scheduler, additionally
    accumulates busy time into the active stream's private map so
    per-tenant accounting stays uncontaminated by other tenants' advances.
    """

    now: float = 0.0
    _busy: dict[str, float] = field(default_factory=dict)
    # The active stream's private busy map (None outside the scheduler).
    _stream_busy: dict[str, float] | None = None

    def advance(self, seconds: float, category: str = "other") -> float:
        """Advance the clock by ``seconds`` attributed to ``category``.

        Returns the new time. Negative durations are a programming error.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.now += seconds
        self._busy[category] = self._busy.get(category, 0.0) + seconds
        stream_busy = self._stream_busy
        if stream_busy is not None:
            stream_busy[category] = stream_busy.get(category, 0.0) + seconds
        return self.now

    def seek(self, now: float) -> None:
        """Reposition the clock to a stream's local time (scheduler only).

        Unlike :meth:`advance` this moves in either direction and charges
        no busy time: the scheduler is switching *which* stream's local
        time ``now`` represents, not modelling elapsed work.
        """
        self.now = now

    def bind_stream(self, busy: dict[str, float] | None) -> None:
        """Point per-stream busy accounting at ``busy`` (None to detach)."""
        self._stream_busy = busy

    def busy(self, category: str) -> float:
        """Total virtual time attributed to ``category`` so far."""
        return self._busy.get(category, 0.0)

    def categories(self) -> dict[str, float]:
        """A copy of the per-category busy-time map."""
        return dict(self._busy)

    def _busy_map(self) -> dict[str, float]:
        """The active accounting scope: the running stream's map when the
        scheduler bound one, the global map otherwise."""
        stream_busy = self._stream_busy
        return self._busy if stream_busy is None else stream_busy

    def checkpoint(self) -> "ClockCheckpoint":
        """Snapshot for computing deltas over a window (e.g. one iteration).

        Inside a scheduled stream the snapshot covers only that stream's
        busy time, so a tenant's iteration metrics never absorb another
        tenant's kernels or copies.
        """
        return ClockCheckpoint(now=self.now, busy=dict(self._busy_map()))

    def since(self, checkpoint: "ClockCheckpoint") -> "ClockDelta":
        """Elapsed time and per-category busy deltas since ``checkpoint``."""
        current = self._busy_map()
        busy = {
            key: current.get(key, 0.0) - checkpoint.busy.get(key, 0.0)
            for key in set(current) | set(checkpoint.busy)
        }
        return ClockDelta(elapsed=self.now - checkpoint.now, busy=busy)

    def reset(self) -> None:
        """Rewind to time zero and clear accounting (between experiments)."""
        self.now = 0.0
        self._busy.clear()
        if self._stream_busy is not None:
            self._stream_busy.clear()

    # -- snapshot/restore ---------------------------------------------------
    # ``_stream_busy`` is a transient alias into the *running* stream's busy
    # map, bound by the scheduler for the duration of one step. A snapshot is
    # only taken between steps, and a restored clock is always re-bound by
    # whatever scheduler drives the resumed run, so the alias is dropped
    # rather than serialized (pickling it would duplicate the stream's map).

    def __getstate__(self) -> dict[str, object]:
        return {"now": self.now, "_busy": self._busy}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.now = state["now"]  # type: ignore[assignment]
        self._busy = state["_busy"]  # type: ignore[assignment]
        self._stream_busy = None


@dataclass(frozen=True)
class ClockCheckpoint:
    """Immutable snapshot of a :class:`SimClock`."""

    now: float
    busy: dict[str, float]


@dataclass(frozen=True)
class ClockDelta:
    """Elapsed wall time and per-category busy time over a window."""

    elapsed: float
    busy: dict[str, float]

    def of(self, category: str) -> float:
        return self.busy.get(category, 0.0)
