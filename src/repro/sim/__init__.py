"""Simulation substrate: virtual time and device bandwidth models.

The paper evaluates on a real Cascade Lake machine with Optane DC NVRAM; we do
not have that hardware (see DESIGN.md §2), so this subpackage provides the
deterministic simulation core every experiment runs on: a virtual
:class:`~repro.sim.clock.SimClock` and bandwidth models parameterised from the
published Optane characterisations the paper cites ([4], [6]).
"""

from repro.sim.clock import SimClock
from repro.sim.bandwidth import (
    BandwidthModel,
    ConstantBandwidth,
    ParallelismCurveBandwidth,
    TransferKind,
    dram_bandwidth_model,
    optane_bandwidth_model,
)

__all__ = [
    "SimClock",
    "BandwidthModel",
    "ConstantBandwidth",
    "ParallelismCurveBandwidth",
    "TransferKind",
    "dram_bandwidth_model",
    "optane_bandwidth_model",
]
