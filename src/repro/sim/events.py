"""The discrete-event core: a priority queue over virtual time.

The multi-stream runtime (docs/architecture.md, "Multi-tenant runtime")
drives every concurrent activity — one tenant's kernel stream, another's,
in-flight DMA completions — from a single queue of :class:`ScheduledEvent`
records ordered by virtual time. Two guarantees make simulations
reproducible:

* **Deterministic tie-break.** Events scheduled for the same virtual time
  pop in the order they were pushed (a monotonic sequence number breaks
  ties), so co-running the same workloads twice interleaves identically.
* **Single-stream reduction.** With exactly one event source the queue
  degenerates into "pop what you just pushed": the execution order is the
  sequential order the pre-scheduler runtime used, which is what keeps the
  golden virtual-time digests bit-identical.

The queue is deliberately tiny: ``heapq`` on ``(time, seq)`` keys with an
opaque payload. Policy lives in :mod:`repro.runtime.scheduler`.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["ScheduledEvent", "EventQueue"]


class ScheduledEvent:
    """One queued occurrence: ``payload`` becomes runnable at ``time``."""

    __slots__ = ("time", "seq", "payload")

    def __init__(self, time: float, seq: int, payload: Any) -> None:
        self.time = time
        self.seq = seq
        self.payload = payload

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # heapq ordering: virtual time first, then FIFO by push order.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduledEvent(time={self.time!r}, seq={self.seq}, "
            f"payload={self.payload!r})"
        )


class EventQueue:
    """A priority queue on virtual time with deterministic FIFO tie-break."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, payload: Any) -> ScheduledEvent:
        """Schedule ``payload`` at virtual ``time``; later pushes at the
        same time pop later (FIFO)."""
        if time != time:  # NaN guard: a NaN key would corrupt heap order
            raise ValueError("cannot schedule an event at NaN time")
        event = ScheduledEvent(time, self._seq, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest event (FIFO among ties)."""
        return heapq.heappop(self._heap)

    def peek(self) -> ScheduledEvent:
        """The earliest event without removing it."""
        return self._heap[0]

    @property
    def next_time(self) -> float | None:
        """Virtual time of the earliest event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def drain(self) -> Iterator[ScheduledEvent]:
        """Pop every event in order (consumes the queue)."""
        while self._heap:
            yield heapq.heappop(self._heap)
