"""Device bandwidth models for DRAM and Optane-class NVRAM.

The paper's results hinge on four device characteristics (Section III-D):

* NVRAM writes are slow and low-bandwidth; reads are "not much slower" than
  DRAM reads.
* Non-temporal stores are crucial for NVRAM write performance (Section V-d).
* DRAM-to-NVRAM copy bandwidth *decreases* with increasing parallelism
  (Section V-d, citing Izraelevitz et al. [6] and Hildebrand et al. [4]).
* Small transfers pay per-transfer overhead, so bus utilisation depends on
  transfer size (the ResNet-vs-VGG story of Figure 6).

This module encodes those characteristics as composable bandwidth models. The
numeric presets come from the published Optane DC characterisations the paper
cites: per-socket six-DIMM aggregates of roughly 39 GB/s sequential read and
13 GB/s non-temporal sequential write, with write bandwidth degrading past
about four concurrent writer threads, and cached (temporal) writes reaching
only about a third of the non-temporal rate.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.units import GB, KiB

__all__ = [
    "TransferKind",
    "BandwidthModel",
    "ConstantBandwidth",
    "DegradedBandwidth",
    "ParallelismCurveBandwidth",
    "dram_bandwidth_model",
    "optane_bandwidth_model",
]


class TransferKind(enum.Enum):
    """How a transfer hits the device; selects the bandwidth curve."""

    READ = "read"
    WRITE = "write"
    WRITE_NT = "write_nt"  # streaming non-temporal stores


@dataclass(frozen=True)
class BandwidthModel:
    """Base interface: map (kind, size, threads) to effective bandwidth.

    ``bandwidth`` returns bytes/second; ``transfer_time`` folds in the fixed
    per-transfer overhead so that tiny transfers never see peak bandwidth.
    """

    setup_latency: float = 0.0  # seconds of fixed cost per transfer

    def peak(self, kind: TransferKind, threads: int = 1) -> float:
        raise NotImplementedError

    def bandwidth(self, kind: TransferKind, nbytes: int, threads: int = 1) -> float:
        """Effective bandwidth for a transfer of ``nbytes`` (B/s).

        ``peak`` is pure in ``(kind, threads)`` (all models are frozen
        dataclasses), so results are memoised per instance: the kernel/copy
        timing paths call this once per operand and the curve arithmetic was
        measurable. The memo only stores values ``peak`` actually returned,
        so the arithmetic — and any validation error — is unchanged.
        """
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        key = (kind, threads)
        try:
            peak = self._peak_memo[key]
        except KeyError:
            peak = self._peak_memo[key] = self.peak(kind, threads)
        except AttributeError:
            peak = self.peak(kind, threads)
            # Frozen dataclass: route the one-time cache attach around
            # __setattr__. Item writes on the dict itself are unrestricted.
            object.__setattr__(self, "_peak_memo", {key: peak})
        return nbytes / (nbytes / peak + self.setup_latency)

    def transfer_time(self, kind: TransferKind, nbytes: int, threads: int = 1) -> float:
        """Modelled seconds to move ``nbytes`` with ``threads`` workers."""
        if nbytes == 0:
            return 0.0
        return nbytes / self.bandwidth(kind, nbytes, threads)


@dataclass(frozen=True)
class ConstantBandwidth(BandwidthModel):
    """Flat read/write bandwidth, independent of thread count.

    Suitable for DRAM in the regime the paper operates in (a single socket is
    easily saturated by the 28-thread copy engine, and DRAM does not exhibit
    Optane's contention collapse).
    """

    read: float = 100 * GB
    write: float = 80 * GB

    def peak(self, kind: TransferKind, threads: int = 1) -> float:
        if kind is TransferKind.READ:
            return self.read
        return self.write


@dataclass(frozen=True)
class ParallelismCurveBandwidth(BandwidthModel):
    """Bandwidth with an Optane-style concurrency curve.

    Bandwidth ramps up to ``best_threads`` and then *degrades* with additional
    concurrency (iMC write-pending-queue contention and XPBuffer thrash in the
    physical device): ``bw(t) = peak * min(t, best) / best / (1 + slope *
    max(0, t - best))``. Temporal (cached) writes are additionally derated by
    ``temporal_write_derate`` because every cached store incurs a
    read-modify-write of the 256 B Optane block.
    """

    read_peak: float = 39 * GB
    write_peak: float = 13 * GB
    best_threads_read: int = 16
    best_threads_write: int = 4
    degradation_slope: float = 0.05
    temporal_write_derate: float = 2.5

    def peak(self, kind: TransferKind, threads: int = 1) -> float:
        if threads < 1:
            raise ValueError(f"thread count must be >= 1, got {threads}")
        if kind is TransferKind.READ:
            base, best = self.read_peak, self.best_threads_read
        else:
            base, best = self.write_peak, self.best_threads_write
        ramp = min(threads, best) / best
        excess = max(0, threads - best)
        bandwidth = base * ramp / (1.0 + self.degradation_slope * excess)
        if kind is TransferKind.WRITE:
            bandwidth /= self.temporal_write_derate
        return bandwidth

    def best_write_threads(self) -> int:
        """The concurrency at which write bandwidth peaks (for copy engines)."""
        return self.best_threads_write


@dataclass(frozen=True)
class DegradedBandwidth(BandwidthModel):
    """A bandwidth model derated by a constant factor (degraded-link fault).

    The fault injector wraps a copy destination's model in this to simulate
    a congested or failing bus: every curve keeps its shape, scaled down by
    ``factor``. Timing-only — data and results are unaffected, which is
    exactly what the chaos suite asserts for bandwidth faults.
    """

    inner: BandwidthModel = None  # type: ignore[assignment]
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.inner is None:
            raise ValueError("DegradedBandwidth requires an inner model")
        if self.factor < 1.0:
            raise ValueError(f"derate factor must be >= 1.0, got {self.factor}")
        object.__setattr__(self, "setup_latency", self.inner.setup_latency)

    def peak(self, kind: TransferKind, threads: int = 1) -> float:
        return self.inner.peak(kind, threads) / self.factor


def dram_bandwidth_model(
    *,
    read: float = 100 * GB,
    write: float = 80 * GB,
    setup_latency: float = 1e-6,
) -> ConstantBandwidth:
    """Single-socket DDR4-2933 six-channel DRAM preset."""
    return ConstantBandwidth(read=read, write=write, setup_latency=setup_latency)


def optane_bandwidth_model(
    *,
    read_peak: float = 39 * GB,
    write_peak: float = 13 * GB,
    setup_latency: float = 3e-6,
) -> ParallelismCurveBandwidth:
    """Single-socket 6x256 GiB Optane DC (Apache Pass) preset.

    Numbers follow the characterisation in Izraelevitz et al. [6]: sequential
    read ~39 GB/s, non-temporal sequential write ~13 GB/s peaking near four
    writer threads, cached writes roughly 2.5x slower than non-temporal.
    """
    return ParallelismCurveBandwidth(
        read_peak=read_peak,
        write_peak=write_peak,
        setup_latency=setup_latency,
    )


def effective_copy_bandwidth(
    source: BandwidthModel,
    dest: BandwidthModel,
    nbytes: int,
    threads: int = 1,
    *,
    nt_stores: bool = True,
) -> float:
    """Peak-rate of a copy: serialized load+store per worker thread.

    A copy thread alternates cache-line loads from ``source`` with
    (non-temporal) stores to ``dest``; non-temporal stores do not pipeline
    behind loads, so the achieved rate is the harmonic combination
    ``1 / (1/read_bw + 1/write_bw)`` rather than the optimistic ``min``.
    This matches the measured DRAM<->Optane copy rates in [4], [6]
    (~10 GB/s toward NVRAM, ~15-25 GB/s from it) and preserves their
    headline anomaly: copy bandwidth *decreases* with extra parallelism.
    """
    write_kind = TransferKind.WRITE_NT if nt_stores else TransferKind.WRITE
    read_bw = source.bandwidth(TransferKind.READ, nbytes, threads)
    write_bw = dest.bandwidth(write_kind, nbytes, threads)
    return 1.0 / (1.0 / read_bw + 1.0 / write_bw)


def copy_time(
    source: BandwidthModel,
    dest: BandwidthModel,
    nbytes: int,
    threads: int = 1,
    *,
    nt_stores: bool = True,
) -> float:
    """Modelled seconds for a traffic-shaped bulk copy of ``nbytes``."""
    if nbytes == 0:
        return 0.0
    return nbytes / effective_copy_bandwidth(
        source, dest, nbytes, threads, nt_stores=nt_stores
    )


def chunk_sizes(nbytes: int, chunk: int = 4 * 1024 * KiB) -> list[int]:
    """Split a transfer into copy-engine chunks (last one may be short)."""
    if nbytes < 0:
        raise ValueError(f"transfer size must be non-negative, got {nbytes}")
    if nbytes == 0:
        return []
    full, rest = divmod(nbytes, chunk)
    sizes = [chunk] * full
    if rest:
        sizes.append(rest)
    return sizes


def optimal_copy_threads(
    source: BandwidthModel,
    dest: BandwidthModel,
    max_threads: int,
    *,
    nt_stores: bool = True,
    probe_limit: int = 64,
) -> int:
    """Pick the thread count maximising the *pair's* copy rate.

    The paper's copy engine is "highly multi-threaded, specifically targeting
    large memory sizes"; toward Optane the sweet spot is small (~4-8
    threads, because write bandwidth collapses beyond that), from Optane it
    is larger. We probe the model rather than hard-coding, so custom device
    models keep working.
    """
    if max_threads < 1:
        raise ValueError(f"max_threads must be >= 1, got {max_threads}")
    write_kind = TransferKind.WRITE_NT if nt_stores else TransferKind.WRITE
    best_threads, best_rate = 1, -math.inf
    for threads in range(1, min(max_threads, probe_limit) + 1):
        read_bw = source.peak(TransferKind.READ, threads)
        write_bw = dest.peak(write_kind, threads)
        rate = 1.0 / (1.0 / read_bw + 1.0 / write_bw)
        if rate > best_rate:
            best_threads, best_rate = threads, rate
    return best_threads
