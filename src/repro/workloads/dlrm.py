"""A DLRM-style recommendation-model workload (Hildebrand et al. [15]).

The paper's outlook leans on the authors' DLRM study: huge, sparsely
accessed embedding tables whose locality shifts with user input — the case
where "the policy must be flexible enough to adapt to the workload".

Structure per training iteration:

* **embedding lookups** — each table is partitioned into ``chunks_per_table``
  persistent chunk tensors; a batch reads a seeded, Zipf-skewed subset of
  chunks per table (hot rows cluster in hot chunks, as row-reordered
  production tables do);
* **bottom MLP** over the dense features;
* **interaction** (concat + pairwise dot) joining embeddings and dense path;
* **top MLP** to the click-probability logit;
* backward + SGD on the touched chunks and MLP weights only — untouched
  chunks are pure capacity, exactly like cold MoE experts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.trace import (
    Alloc,
    Free,
    IterEnd,
    Kernel,
    KernelTrace,
    TensorSpec,
)

__all__ = ["dlrm_trace"]


def dlrm_trace(
    *,
    tables: int = 8,
    chunks_per_table: int = 32,
    chunk_bytes: int = 1 << 20,
    lookups_per_table: int = 4,
    batch: int = 2048,
    dense_dim: int = 256,
    mlp_hidden: int = 512,
    zipf_exponent: float = 1.1,
    batches: int = 1,
    full_scan_every: int = 0,
    seed: int = 0,
    name: str = "DLRM",
) -> KernelTrace:
    """One DLRM training iteration (``batches`` minibatches) as a trace.

    Real recommendation training draws *fresh* lookup indices every
    minibatch; ``batches > 1`` concatenates several minibatches with
    independently drawn (but same-Zipf) chunk selections, so recency-only
    policies face genuinely shifting access sets within an iteration.

    ``full_scan_every = N`` inserts a full-table scan after every Nth
    minibatch — an eval/checkpoint pass touching every chunk once. Scans are
    the classic LRU poison: they make cold capacity look recently used,
    which is exactly where frequency-aware policies earn their keep.
    """
    if tables < 1 or chunks_per_table < 1:
        raise ConfigurationError("need at least one table and one chunk")
    if batches < 1:
        raise ConfigurationError(f"batches must be >= 1, got {batches}")
    if not 1 <= lookups_per_table <= chunks_per_table:
        raise ConfigurationError(
            f"lookups_per_table must be in [1, {chunks_per_table}]"
        )
    rng = np.random.default_rng(seed)
    trace = KernelTrace(name=name)
    dtype_bytes = 4

    # --- persistent state: embedding chunks + MLP weights + their grads ---
    for table in range(tables):
        for chunk in range(chunks_per_table):
            trace.add_tensor(
                TensorSpec(
                    f"emb_t{table}_c{chunk}",
                    chunk_bytes,
                    kind="state",
                    persistent=True,
                )
            )
            trace.append(Alloc(f"emb_t{table}_c{chunk}"))
    mlp_weights = []
    for label, rows, cols in (
        ("w_bot0", mlp_hidden, dense_dim),
        ("w_bot1", dense_dim, mlp_hidden),
        ("w_top0", mlp_hidden, dense_dim * 2),
        ("w_top1", 1, mlp_hidden),
    ):
        nbytes = rows * cols * dtype_bytes
        trace.add_tensor(TensorSpec(label, nbytes, kind="weight", persistent=True))
        trace.add_tensor(
            TensorSpec(f"grad({label})", nbytes, kind="gradient", persistent=True)
        )
        trace.append(Alloc(label))
        trace.append(Alloc(f"grad({label})"))
        mlp_weights.append((label, nbytes, rows * cols))

    ranks = np.arange(1, chunks_per_table + 1, dtype=np.float64)
    popularity = ranks**-zipf_exponent
    popularity /= popularity.sum()

    def activation(label: str, nbytes: int) -> str:
        trace.add_tensor(TensorSpec(label, nbytes, kind="activation"))
        trace.append(Alloc(label))
        return label

    for b in range(batches):
        touched: list[str] = []
        dense_bytes = batch * dense_dim * dtype_bytes

        # --- forward ---
        dense_in = activation(f"dense_in_b{b}", dense_bytes)
        bot_h = activation(f"bot_hidden_b{b}", batch * mlp_hidden * dtype_bytes)
        trace.append(
            Kernel(
                f"bot_mlp0_b{b}",
                reads=(dense_in, "w_bot0"),
                writes=(bot_h,),
                flops=2.0 * batch * dense_dim * mlp_hidden,
                phase="forward",
            )
        )
        bot_out = activation(f"bot_out_b{b}", dense_bytes)
        trace.append(
            Kernel(
                f"bot_mlp1_b{b}",
                reads=(bot_h, "w_bot1"),
                writes=(bot_out,),
                flops=2.0 * batch * mlp_hidden * dense_dim,
                phase="forward",
            )
        )
        pooled: list[str] = []
        for table in range(tables):
            chosen = rng.choice(
                chunks_per_table, size=lookups_per_table, replace=False, p=popularity
            )
            chunk_names = tuple(f"emb_t{table}_c{int(c)}" for c in chosen)
            touched.extend(chunk_names)
            out = activation(f"pooled_t{table}_b{b}", dense_bytes)
            pooled.append(out)
            trace.append(
                Kernel(
                    f"lookup_t{table}_b{b}",
                    reads=chunk_names,
                    writes=(out,),
                    flops=float(batch * dense_dim * lookups_per_table),
                    phase="forward",
                    # Gathers are latency/bandwidth bound and random: expose them.
                    read_sensitivity=1.0,
                )
            )
        interact = activation(f"interaction_b{b}", 2 * dense_bytes)
        trace.append(
            Kernel(
                f"interaction_b{b}",
                reads=tuple(pooled) + (bot_out,),
                writes=(interact,),
                flops=2.0 * batch * dense_dim * (tables + 1),
                phase="forward",
            )
        )
        top_h = activation(f"top_hidden_b{b}", batch * mlp_hidden * dtype_bytes)
        trace.append(
            Kernel(
                f"top_mlp0_b{b}",
                reads=(interact, "w_top0"),
                writes=(top_h,),
                flops=2.0 * batch * 2 * dense_dim * mlp_hidden,
                phase="forward",
            )
        )
        logit = activation(f"logit_b{b}", batch * dtype_bytes)
        trace.append(
            Kernel(
                f"top_mlp1_b{b}",
                reads=(top_h, "w_top1"),
                writes=(logit,),
                flops=2.0 * batch * mlp_hidden,
                phase="forward",
            )
        )

        # --- backward (reverse order; grads accumulate into persistent buffers) ---
        glogit = activation(f"grad_logit_b{b}", batch * dtype_bytes)
        trace.append(
            Kernel(
                f"loss_bwd_b{b}", reads=(logit,), writes=(glogit,), flops=5.0 * batch,
                phase="backward",
            )
        )
        trace.append(Free(logit))
        gtop_h = activation(f"grad_top_hidden_b{b}", batch * mlp_hidden * dtype_bytes)
        trace.append(
            Kernel(
                f"top_mlp1_bwd_b{b}",
                reads=(glogit, top_h, "w_top1"),
                writes=(gtop_h, "grad(w_top1)"),
                flops=4.0 * batch * mlp_hidden,
                phase="backward",
            )
        )
        trace.append(Free(glogit))
        trace.append(Free(top_h))
        ginteract = activation(f"grad_interaction_b{b}", 2 * dense_bytes)
        trace.append(
            Kernel(
                f"top_mlp0_bwd_b{b}",
                reads=(gtop_h, interact, "w_top0"),
                writes=(ginteract, "grad(w_top0)"),
                flops=4.0 * batch * 2 * dense_dim * mlp_hidden,
                phase="backward",
            )
        )
        trace.append(Free(gtop_h))
        trace.append(Free(interact))
        # Embedding-gradient scatter back into the touched chunks.
        trace.append(
            Kernel(
                f"emb_scatter_b{b}",
                reads=(ginteract,),
                writes=tuple(dict.fromkeys(touched)),
                flops=float(batch * dense_dim * tables),
                phase="backward",
            )
        )
        gbot = activation(f"grad_bot_out_b{b}", dense_bytes)
        trace.append(
            Kernel(
                f"interaction_bwd_b{b}",
                reads=(ginteract, bot_out),
                writes=(gbot,),
                flops=2.0 * batch * dense_dim * (tables + 1),
                phase="backward",
            )
        )
        trace.append(Free(ginteract))
        for p in pooled:
            trace.append(Free(p))
        trace.append(Free(bot_out))
        gbot_h = activation(f"grad_bot_hidden_b{b}", batch * mlp_hidden * dtype_bytes)
        trace.append(
            Kernel(
                f"bot_mlp1_bwd_b{b}",
                reads=(gbot, bot_h, "w_bot1"),
                writes=(gbot_h, "grad(w_bot1)"),
                flops=4.0 * batch * mlp_hidden * dense_dim,
                phase="backward",
            )
        )
        trace.append(Free(gbot))
        trace.append(Free(bot_h))
        trace.append(
            Kernel(
                f"bot_mlp0_bwd_b{b}",
                reads=(gbot_h, dense_in, "w_bot0"),
                writes=("grad(w_bot0)",),
                flops=4.0 * batch * dense_dim * mlp_hidden,
                phase="backward",
            )
        )
        trace.append(Free(gbot_h))
        trace.append(Free(dense_in))

        # --- updates: MLP weights + only the touched chunks ---
        for label, nbytes, elements in mlp_weights:
            trace.append(
                Kernel(
                    f"sgd:{label}_b{b}",
                    reads=(f"grad({label})",),
                    writes=(label,),
                    flops=2.0 * elements,
                    phase="update",
                )
            )
        for chunk_name in dict.fromkeys(touched):
            trace.append(
                Kernel(
                    f"sgd:{chunk_name}_b{b}",
                    reads=(chunk_name,),
                    writes=(chunk_name,),
                    flops=float(chunk_bytes // dtype_bytes),
                    phase="update",
                )
            )
        if full_scan_every and (b + 1) % full_scan_every == 0:
            all_chunks = tuple(
                f"emb_t{t}_c{c}"
                for t in range(tables)
                for c in range(chunks_per_table)
            )
            scan_out = activation(f"scan_out_b{b}", dense_bytes)
            trace.append(
                Kernel(
                    f"full_scan_b{b}",
                    reads=all_chunks,
                    writes=(scan_out,),
                    flops=float(tables * chunks_per_table * chunk_bytes // dtype_bytes),
                    phase="forward",
                    read_sensitivity=0.0,  # a streaming pass, easily overlapped
                    hinted=False,  # scans carry no will_read: do not prefetch
                )
            )
            trace.append(Free(scan_out))
    trace.append(IterEnd())
    trace.validate()
    return trace
