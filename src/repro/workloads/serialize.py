"""Trace serialization: kernel traces as portable JSON artifacts.

A downstream user profiling a real application wants to capture its kernel
trace once and replay it against many policies/platforms. This module gives
traces a stable, versioned JSON representation with full round-trip fidelity
(tensors, every event type, kernel attributes), plus iteration-result export
for the CLI's ``--json`` mode.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.errors import TraceError
from repro.workloads.trace import (
    Alloc,
    Archive,
    Event,
    Free,
    GcDefer,
    IterEnd,
    Kernel,
    KernelTrace,
    Retire,
    TensorSpec,
    WillRead,
    WillWrite,
)

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

FORMAT_VERSION = 1

_TENSOR_EVENTS: dict[str, type] = {
    "alloc": Alloc,
    "free": Free,
    "retire": Retire,
    "gc_defer": GcDefer,
    "archive": Archive,
    "will_read": WillRead,
    "will_write": WillWrite,
}
_EVENT_NAMES = {cls: name for name, cls in _TENSOR_EVENTS.items()}


def _event_to_dict(event: Event) -> dict[str, Any]:
    if isinstance(event, Kernel):
        out: dict[str, Any] = {
            "type": "kernel",
            "name": event.name,
            "reads": list(event.reads),
            "writes": list(event.writes),
            "flops": event.flops,
            "phase": event.phase,
        }
        # Keep the common case compact: omit defaulted attributes.
        if event.read_factor != 1.0:
            out["read_factor"] = event.read_factor
        if event.write_factor != 1.0:
            out["write_factor"] = event.write_factor
        if event.read_sensitivity != 1.0:
            out["read_sensitivity"] = event.read_sensitivity
        if not event.hinted:
            out["hinted"] = False
        return out
    if isinstance(event, IterEnd):
        return {"type": "iter_end"}
    name = _EVENT_NAMES.get(type(event))
    if name is None:
        raise TraceError(f"cannot serialise event {event!r}")
    return {"type": name, "tensor": event.tensor}


def _event_from_dict(data: dict[str, Any]) -> Event:
    kind = data.get("type")
    if kind == "kernel":
        return Kernel(
            name=data["name"],
            reads=tuple(data["reads"]),
            writes=tuple(data["writes"]),
            flops=float(data["flops"]),
            phase=data.get("phase", "forward"),
            read_factor=float(data.get("read_factor", 1.0)),
            write_factor=float(data.get("write_factor", 1.0)),
            read_sensitivity=float(data.get("read_sensitivity", 1.0)),
            hinted=bool(data.get("hinted", True)),
        )
    if kind == "iter_end":
        return IterEnd()
    cls = _TENSOR_EVENTS.get(kind or "")
    if cls is None:
        raise TraceError(f"unknown event type {kind!r}")
    return cls(data["tensor"])


def trace_to_dict(trace: KernelTrace) -> dict[str, Any]:
    """A JSON-safe dict capturing the trace exactly."""
    return {
        "format": FORMAT_VERSION,
        "name": trace.name,
        "tensors": [
            {
                "name": spec.name,
                "nbytes": spec.nbytes,
                "kind": spec.kind,
                "persistent": spec.persistent,
            }
            for spec in trace.tensors.values()
        ],
        "events": [_event_to_dict(event) for event in trace.events],
    }


def trace_from_dict(data: dict[str, Any]) -> KernelTrace:
    """Rebuild a trace; validates structure and event stream."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise TraceError(f"unsupported trace format {version!r}")
    trace = KernelTrace(name=data.get("name", "trace"))
    for tensor in data.get("tensors", ()):
        trace.add_tensor(
            TensorSpec(
                name=tensor["name"],
                nbytes=int(tensor["nbytes"]),
                kind=tensor.get("kind", "temp"),
                persistent=bool(tensor.get("persistent", False)),
            )
        )
    for event in data.get("events", ()):
        trace.append(_event_from_dict(event))
    trace.validate()
    return trace


def save_trace(trace: KernelTrace, fp: IO[str]) -> None:
    """Write a trace as JSON to an open text file."""
    json.dump(trace_to_dict(trace), fp)


def load_trace(fp: IO[str]) -> KernelTrace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.load(fp))
