"""Synthetic workload generators for tests, micro-benchmarks, and ablations.

Three access-pattern families that stress different parts of the tiering
machinery:

* :func:`streaming_trace` — produce-consume-free pipeline; minimal reuse,
  exercises local allocation and eager retirement;
* :func:`filo_stack_trace` — the CNN-training shape: a forward phase stacks
  up activations, a backward phase consumes them first-in-last-out;
* :func:`random_reuse_trace` — a DLRM-ish pattern with seeded random reuse
  of a working set larger than fast memory, exercising LRU quality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.workloads.trace import Alloc, Free, IterEnd, Kernel, KernelTrace, TensorSpec

__all__ = [
    "streaming_trace",
    "filo_stack_trace",
    "random_reuse_trace",
    "shifting_reuse_trace",
]


def streaming_trace(
    stages: int = 16,
    tensor_bytes: int = 1 << 20,
    flops_per_stage: float = 1e9,
) -> KernelTrace:
    """stage_i reads t_{i-1}, writes t_i; t_{i-1} dies immediately after."""
    if stages < 1:
        raise TraceError(f"need at least one stage, got {stages}")
    trace = KernelTrace(name=f"stream{stages}")
    previous = trace.add_tensor(TensorSpec("t0", tensor_bytes, kind="input"))
    trace.append(Alloc(previous.name))
    for i in range(1, stages + 1):
        current = trace.add_tensor(TensorSpec(f"t{i}", tensor_bytes))
        trace.append(Alloc(current.name))
        trace.append(
            Kernel(
                name=f"stage{i}",
                reads=(previous.name,),
                writes=(current.name,),
                flops=flops_per_stage,
            )
        )
        trace.append(Free(previous.name))
        previous = current
    trace.append(Free(previous.name))
    trace.append(IterEnd())
    trace.validate()
    return trace


def filo_stack_trace(
    depth: int = 12,
    activation_bytes: int = 1 << 20,
    weight_bytes: int = 1 << 18,
    flops_per_layer: float = 1e9,
) -> KernelTrace:
    """Forward stacks activations; backward consumes them in FILO order.

    The shape of Section III-E: intermediate activations produced on the
    forward pass are "not consumed until the backward pass ... generally
    used and freed in a first-in last-out manner".
    """
    if depth < 1:
        raise TraceError(f"need at least one layer, got {depth}")
    trace = KernelTrace(name=f"filo{depth}")
    for i in range(depth):
        trace.add_tensor(
            TensorSpec(f"w{i}", weight_bytes, kind="weight", persistent=True)
        )
        trace.append(Alloc(f"w{i}"))
    trace.add_tensor(TensorSpec("a0", activation_bytes, kind="input"))
    trace.append(Alloc("a0"))
    # Forward pass.
    for i in range(depth):
        trace.add_tensor(TensorSpec(f"a{i + 1}", activation_bytes, kind="activation"))
        trace.append(Alloc(f"a{i + 1}"))
        trace.append(
            Kernel(
                name=f"fwd{i}",
                reads=(f"a{i}", f"w{i}"),
                writes=(f"a{i + 1}",),
                flops=flops_per_layer,
                phase="forward",
            )
        )
    # Backward pass, FILO.
    trace.add_tensor(TensorSpec(f"g{depth}", activation_bytes, kind="gradient"))
    trace.append(Alloc(f"g{depth}"))
    for i in reversed(range(depth)):
        trace.add_tensor(TensorSpec(f"g{i}", activation_bytes, kind="gradient"))
        trace.add_tensor(TensorSpec(f"wg{i}", weight_bytes, kind="gradient"))
        trace.append(Alloc(f"g{i}"))
        trace.append(Alloc(f"wg{i}"))
        trace.append(
            Kernel(
                name=f"bwd{i}",
                reads=(f"g{i + 1}", f"a{i}", f"w{i}"),
                writes=(f"g{i}", f"wg{i}"),
                flops=2 * flops_per_layer,
                phase="backward",
            )
        )
        trace.append(Free(f"g{i + 1}"))
        trace.append(Free(f"a{i + 1}"))
        trace.append(
            Kernel(
                name=f"sgd{i}",
                reads=(f"wg{i}",),
                writes=(f"w{i}",),
                flops=weight_bytes / 4,
                phase="update",
            )
        )
        trace.append(Free(f"wg{i}"))
    trace.append(Free("g0"))
    trace.append(Free("a0"))
    trace.append(IterEnd())
    trace.validate()
    return trace


def random_reuse_trace(
    working_set: int = 64,
    kernels: int = 256,
    tensor_bytes: int = 1 << 20,
    flops_per_kernel: float = 5e8,
    *,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.8,
    seed: int = 0,
) -> KernelTrace:
    """Skewed random reuse over a persistent working set (DLRM-like).

    A ``hot_fraction`` of tensors receives ``hot_probability`` of the
    accesses; the rest form a cold tail. Deterministic for a given seed.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise TraceError(f"hot_fraction must be in (0,1), got {hot_fraction}")
    rng = np.random.default_rng(seed)
    trace = KernelTrace(name=f"reuse{working_set}x{kernels}")
    for i in range(working_set):
        trace.add_tensor(
            TensorSpec(f"e{i}", tensor_bytes, kind="state", persistent=True)
        )
        trace.append(Alloc(f"e{i}"))
    hot_count = max(1, int(working_set * hot_fraction))
    for k in range(kernels):
        if rng.random() < hot_probability:
            index = int(rng.integers(0, hot_count))
        else:
            index = int(rng.integers(hot_count, working_set))
        out = trace.add_tensor(TensorSpec(f"tmp{k}", tensor_bytes))
        trace.append(Alloc(out.name))
        trace.append(
            Kernel(
                name=f"lookup{k}",
                reads=(f"e{index}",),
                writes=(out.name,),
                flops=flops_per_kernel,
            )
        )
        trace.append(Free(out.name))
    trace.append(IterEnd())
    trace.validate()
    return trace


def shifting_reuse_trace(
    working_set: int = 64,
    kernels_per_phase: int = 128,
    phases: int = 3,
    tensor_bytes: int = 1 << 20,
    flops_per_kernel: float = 5e8,
    *,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.85,
    seed: int = 0,
) -> KernelTrace:
    """DLRM-style skewed reuse whose hot set *rotates* every phase.

    Section VI's motivating case: "the locality of the data changes based on
    user input". A frequency-only policy overfits the first phase's hot set;
    recency-only thrashes within each phase — the adaptive policy must track
    the shift.
    """
    if phases < 1:
        raise TraceError(f"need at least one phase, got {phases}")
    if not 0.0 < hot_fraction < 1.0:
        raise TraceError(f"hot_fraction must be in (0,1), got {hot_fraction}")
    rng = np.random.default_rng(seed)
    trace = KernelTrace(name=f"shift{working_set}x{phases}")
    for i in range(working_set):
        trace.add_tensor(
            TensorSpec(f"e{i}", tensor_bytes, kind="state", persistent=True)
        )
        trace.append(Alloc(f"e{i}"))
    hot_count = max(1, int(working_set * hot_fraction))
    counter = 0
    for phase in range(phases):
        hot_base = (phase * hot_count) % working_set
        for _ in range(kernels_per_phase):
            if rng.random() < hot_probability:
                index = (hot_base + int(rng.integers(0, hot_count))) % working_set
            else:
                index = int(rng.integers(0, working_set))
            out = trace.add_tensor(TensorSpec(f"tmp{counter}", tensor_bytes))
            trace.append(Alloc(out.name))
            trace.append(
                Kernel(
                    name=f"lookup{counter}",
                    reads=(f"e{index}",),
                    writes=(out.name,),
                    flops=flops_per_kernel,
                )
            )
            trace.append(Free(out.name))
            counter += 1
    trace.append(IterEnd())
    trace.validate()
    return trace
