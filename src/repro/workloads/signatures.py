"""Movement-signature workloads for the bottleneck taxonomy (DAMOV-style).

The paper's workloads are all dense, streaming-friendly tensor traffic.
DAMOV's point is that data movement bottlenecks applications in different
*places*; these three generators produce traces whose movement signatures
sit squarely in one class each, so the taxonomy classifier
(:mod:`repro.telemetry.taxonomy`) has ground truth to separate:

* :func:`pointer_chase_trace` — **latency-bound**: a dependent walk over a
  DRAM-resident node pool. Every hop is a tiny kernel whose launch overhead
  and per-operand setup latency dwarf its byte traffic.
* :func:`scan_trace` — **bandwidth-bound**: full scans of tables larger
  than fast memory. Tables can never be promoted, so every scan streams
  from NVRAM at device bandwidth; fixed costs amortise to nothing.
* :func:`tiny_objects_trace` — **overhead/capacity-bound** (the KLOC
  signature): a persistent pool of many small objects oversubscribing DRAM
  plus a storm of short-lived temporaries. The runtime moves lots of small
  objects whose per-transfer fixed overhead is comparable to their payload,
  under continuous eviction pressure.

All three thread one seeded :func:`numpy.random.default_rng` through their
construction — no global RNG state — so adding or reordering workloads can
never perturb existing golden digests. Sizes are paper-magnitude (pair with
``ExperimentConfig.scale`` like every other workload).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.units import GB, MiB
from repro.workloads.trace import Alloc, Free, IterEnd, Kernel, KernelTrace, TensorSpec

__all__ = [
    "pointer_chase_trace",
    "scan_trace",
    "tiny_objects_trace",
]


def pointer_chase_trace(
    nodes: int = 768,
    node_bytes: int = 8 * MiB,
    steps: int = 384,
    *,
    fanout: int = 1,
    seed: int = 0,
) -> KernelTrace:
    """Dependent pointer walk over a DRAM-sized node pool (latency-bound).

    A graph traversal touches one node per hop; the next hop depends on the
    last, so nothing batches and nothing streams. The pool (default 6 GiB at
    paper magnitude) fits fast memory outright — there is no capacity story
    and almost no byte traffic, just ``steps`` kernel launches each reading
    ``fanout`` small operands. Kernels carry zero flops: the modelled time
    is pure launch overhead plus per-operand setup, which is exactly the
    transfer-count-dominated signature DAMOV calls latency-bound.

    ``phase="traverse"`` keeps the annotation pass from archiving the pool
    (archive hints are a forward-pass concept; archiving hot graph nodes
    would manufacture movement the workload does not have).
    """
    if nodes < 1:
        raise TraceError(f"need at least one node, got {nodes}")
    if steps < 1:
        raise TraceError(f"need at least one step, got {steps}")
    if not 1 <= fanout <= nodes:
        raise TraceError(f"fanout must be in [1, {nodes}], got {fanout}")
    rng = np.random.default_rng(seed)
    trace = KernelTrace(name=f"chase{nodes}x{steps}")
    for i in range(nodes):
        trace.add_tensor(
            TensorSpec(f"n{i}", node_bytes, kind="state", persistent=True)
        )
        trace.append(Alloc(f"n{i}"))
    cursor = trace.add_tensor(
        TensorSpec("cursor", node_bytes, kind="state", persistent=True)
    )
    trace.append(Alloc(cursor.name))
    current = int(rng.integers(0, nodes))
    for k in range(steps):
        neighbours = [current]
        while len(neighbours) < fanout:
            step = int(rng.integers(0, nodes))
            if step not in neighbours:
                neighbours.append(step)
        trace.append(
            Kernel(
                name=f"hop{k}",
                reads=tuple(f"n{i}" for i in neighbours),
                writes=(cursor.name,),
                flops=0.0,
                phase="traverse",
            )
        )
        current = int(rng.integers(0, nodes))
    trace.append(IterEnd())
    trace.validate()
    return trace


def scan_trace(
    tables: int = 3,
    table_bytes: int = 380 * GB,
    passes: int = 4,
    *,
    flops_per_byte: float = 0.25,
    summary_bytes: int = 16 * MiB,
    seed: int = 0,
) -> KernelTrace:
    """Repeated full scans of NVRAM-resident tables (bandwidth-bound).

    Each table (default 380 GB, more than double the paper's 180 GB DRAM)
    can never fit fast memory, so every scan streams the whole table from
    NVRAM at whatever bandwidth the device curve gives 28 reader threads.
    Scans are ``hinted=False`` — announcing a ``will_read`` on a table that
    cannot be promoted is pure hint noise — and fully read-sensitive, the
    analytics-scan regime where cores wait on the memory bus. Fixed costs
    (launch, setup) amortise over hundreds of gigabytes: the signature is
    byte-volume, not transfer-count. The per-pass scan order is shuffled by
    the seeded generator.
    """
    if tables < 1:
        raise TraceError(f"need at least one table, got {tables}")
    if passes < 1:
        raise TraceError(f"need at least one pass, got {passes}")
    rng = np.random.default_rng(seed)
    trace = KernelTrace(name=f"scan{tables}x{passes}")
    for i in range(tables):
        trace.add_tensor(
            TensorSpec(f"table{i}", table_bytes, kind="state", persistent=True)
        )
        trace.append(Alloc(f"table{i}"))
    counter = 0
    for _ in range(passes):
        for i in rng.permutation(tables):
            out = trace.add_tensor(TensorSpec(f"summary{counter}", summary_bytes))
            trace.append(Alloc(out.name))
            trace.append(
                Kernel(
                    name=f"scan{counter}",
                    reads=(f"table{int(i)}",),
                    writes=(out.name,),
                    flops=table_bytes * flops_per_byte,
                    phase="scan",
                    read_sensitivity=1.0,
                    hinted=False,
                )
            )
            trace.append(Free(out.name))
            counter += 1
    trace.append(IterEnd())
    trace.validate()
    return trace


def tiny_objects_trace(
    base_objects: int = 3900,
    base_bytes: int = 48 * MiB,
    waves: int = 10,
    temps_per_wave: int = 48,
    temp_bytes: int = 8 * MiB,
    touches_per_wave: int = 12,
    *,
    seed: int = 0,
) -> KernelTrace:
    """KLOC-style many-tiny-objects storm (overhead/capacity-bound).

    A persistent pool of ``base_objects`` small objects slightly
    oversubscribes DRAM (default ~183 GB against the paper's 180 GB), so
    the runtime is permanently at capacity. Each wave then allocates a
    burst of short-lived temporaries — every one forcing an eviction-sized
    hole — and touches random pool objects, faulting spilled ones back in
    and evicting others. All movement is small objects: at 48 MiB the
    modelled per-transfer fixed cost (copy-engine setup plus device setup
    latencies) is comparable to the payload time, the per-object-overhead
    regime KLOC targets that dense tensor workloads never enter.
    """
    if base_objects < 1:
        raise TraceError(f"need at least one base object, got {base_objects}")
    if waves < 1:
        raise TraceError(f"need at least one wave, got {waves}")
    rng = np.random.default_rng(seed)
    trace = KernelTrace(name=f"tiny{base_objects}x{waves}")
    for i in range(base_objects):
        trace.add_tensor(
            TensorSpec(f"b{i}", base_bytes, kind="state", persistent=True)
        )
        trace.append(Alloc(f"b{i}"))
    acc = trace.add_tensor(
        TensorSpec("acc", temp_bytes, kind="state", persistent=True)
    )
    trace.append(Alloc(acc.name))
    counter = 0
    for _ in range(waves):
        wave_temps = []
        for _ in range(temps_per_wave):
            temp = trace.add_tensor(TensorSpec(f"tmp{counter}", temp_bytes))
            wave_temps.append(temp.name)
            source = int(rng.integers(0, base_objects))
            trace.append(Alloc(temp.name))
            trace.append(
                Kernel(
                    name=f"storm{counter}",
                    reads=(f"b{source}",),
                    writes=(temp.name,),
                    flops=1e6,
                    phase="storm",
                )
            )
            counter += 1
        for _ in range(touches_per_wave):
            target = int(rng.integers(0, base_objects))
            trace.append(
                Kernel(
                    name=f"touch{counter}",
                    reads=(f"b{target}",),
                    writes=(acc.name,),
                    flops=1e6,
                    phase="touch",
                )
            )
            counter += 1
        for name in wave_temps:
            trace.append(Free(name))
    trace.append(IterEnd())
    trace.validate()
    return trace
