"""Workloads: kernel traces, hint annotation, and synthetic generators.

The paper's workloads follow the kernel programming model (Section III-C):
long-running kernels reading and writing large tensors, with allocation and
semantic-death points known to the runtime. A
:class:`~repro.workloads.trace.KernelTrace` captures exactly that — one
training iteration as a validated event stream — and
:mod:`repro.workloads.annotate` rewrites it per operating mode (eager
``retire`` versus GC-deferred frees, ``archive`` insertion per Section
III-E). The same annotated trace is executed against CachedArrays sessions
and the 2LM baseline, so mode comparisons differ only in the memory system.
"""

from repro.workloads.trace import (
    Alloc,
    Archive,
    Free,
    GcDefer,
    IterEnd,
    Kernel,
    KernelTrace,
    Retire,
    TensorSpec,
)
from repro.workloads.annotate import annotate
from repro.workloads.serialize import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.workloads.signatures import (
    pointer_chase_trace,
    scan_trace,
    tiny_objects_trace,
)
from repro.workloads.synthetic import (
    filo_stack_trace,
    random_reuse_trace,
    shifting_reuse_trace,
    streaming_trace,
)

__all__ = [
    "Alloc",
    "Archive",
    "Free",
    "GcDefer",
    "IterEnd",
    "Kernel",
    "KernelTrace",
    "Retire",
    "TensorSpec",
    "annotate",
    "load_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "filo_stack_trace",
    "pointer_chase_trace",
    "random_reuse_trace",
    "scan_trace",
    "shifting_reuse_trace",
    "streaming_trace",
    "tiny_objects_trace",
]
