"""Hint-annotation pass: from semantic lifetimes to per-mode traces.

The paper inserts hints while compiling the model with Zygote (Section IV);
here the equivalent pass rewrites a raw kernel trace:

* **M on** (memory optimisations): every ``Free`` — the semantic death point
  — becomes an eager ``Retire``. "We retire arrays as soon as possible
  rather than relying solely on Julia's garbage collector."
* **M off**: ``Free`` becomes ``GcDefer`` — the tensor is dead but memory is
  reclaimed only when the collector runs, keeping the data alive longer than
  necessary (and forcing NVRAM writebacks of dead bytes when it is evicted).
* **archive** (Section III-E): "following kernel execution on the forward
  pass, archive is called on the weights, bias, and previous activations" —
  after each forward kernel, its read operands get an ``Archive`` hint
  (unless the very next event already frees them).

``will_read``/``will_write`` hints are issued per kernel by the executor
(they are positionally determined: immediately before the kernel), so they
do not appear as trace events.
"""

from __future__ import annotations

from repro.workloads.trace import (
    Alloc,
    Archive,
    Event,
    Free,
    GcDefer,
    Kernel,
    KernelTrace,
    Retire,
    WillRead,
)

__all__ = ["annotate"]


def annotate(
    trace: KernelTrace,
    *,
    memopt: bool,
    archive_hints: bool = True,
    lookahead: int = 0,
) -> KernelTrace:
    """Rewrite a raw trace for one operating mode. Validates the input.

    ``lookahead > 0`` additionally emits explicit ``WillRead`` hints
    ``lookahead`` kernels ahead of each kernel's read set (never earlier
    than the operand's allocation). With a prefetching policy and an
    asynchronous copy engine, this is what lets data movement overlap with
    compute — the paper's Section VI / Figure 7 projection.
    """
    trace.validate()
    events: list[Event] = []
    freed_next: set[str] = set()
    raw = trace.events
    for index, event in enumerate(raw):
        if isinstance(event, Free):
            events.append(
                Retire(event.tensor) if memopt else GcDefer(event.tensor)
            )
            continue
        events.append(event)
        if archive_hints and isinstance(event, Kernel) and event.phase == "forward":
            freed_next.clear()
            # Look ahead past this kernel for immediate frees: archiving a
            # tensor that dies right away would be pure hint noise.
            for successor in raw[index + 1 : index + 1 + len(event.reads)]:
                if isinstance(successor, Free):
                    freed_next.add(successor.tensor)
            for name in event.reads:
                if name not in freed_next:
                    events.append(Archive(name))
    if lookahead > 0:
        events = _insert_lookahead_hints(events, lookahead)
    suffix = f"{'M' if memopt else 'gc'}{'A' if archive_hints else ''}"
    if lookahead:
        suffix += f"+la{lookahead}"
    annotated = trace.with_events(events, suffix)
    annotated.validate()
    return annotated


def _insert_lookahead_hints(events: list[Event], lookahead: int) -> list[Event]:
    """Emit ``WillRead(t)`` ``lookahead`` kernels before each read of ``t``.

    Hints are clamped to after the operand's allocation and deduplicated
    per (tensor, insertion slot).
    """
    kernel_positions = [
        index for index, event in enumerate(events) if isinstance(event, Kernel)
    ]
    alloc_position: dict[str, int] = {}
    for index, event in enumerate(events):
        if isinstance(event, Alloc) and event.tensor not in alloc_position:
            alloc_position[event.tensor] = index
    # hints[i] = names to announce just before event index i
    hints: dict[int, list[str]] = {}
    emitted: set[tuple[int, str]] = set()
    for kernel_number, position in enumerate(kernel_positions):
        kernel = events[position]
        assert isinstance(kernel, Kernel)
        target_number = kernel_number - lookahead
        if target_number < 0:
            slot = kernel_positions[0]
        else:
            slot = kernel_positions[target_number]
        for name in kernel.reads:
            at = max(slot, alloc_position.get(name, 0) + 1)
            if at >= position:  # no room ahead of the kernel itself
                continue
            key = (at, name)
            if key not in emitted:
                emitted.add(key)
                hints.setdefault(at, []).append(name)
    out: list[Event] = []
    for index, event in enumerate(events):
        for name in hints.get(index, ()):
            out.append(WillRead(name))
        out.append(event)
    return out
