"""Kernel traces: one training iteration as a validated event stream.

A raw trace (produced by :mod:`repro.nn.graph` or the synthetic generators)
contains :class:`Alloc`, :class:`Kernel`, :class:`Free`, and :class:`IterEnd`
events with *exact* tensor lifetimes: a ``Free`` sits at the semantic death
point (last use) of its tensor. The annotation pass then rewrites ``Free``
into either :class:`Retire` (eager, the **M** optimisation) or
:class:`GcDefer` (the tensor is dead but only the garbage collector will
reclaim it), and inserts :class:`Archive` hints.

Tensors are identified by name. ``persistent`` tensors (weights, optimiser
state) survive across iterations: their ``Alloc`` is a no-op after the first
iteration and they never carry a ``Free``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.errors import TraceError

__all__ = [
    "TensorSpec",
    "Alloc",
    "Kernel",
    "Free",
    "Retire",
    "GcDefer",
    "Archive",
    "WillRead",
    "WillWrite",
    "IterEnd",
    "Event",
    "KernelTrace",
]


@dataclass(frozen=True)
class TensorSpec:
    """One logical tensor of a workload."""

    name: str
    nbytes: int
    kind: str = "temp"  # weight | gradient | activation | input | temp | state
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise TraceError(f"tensor {self.name!r} has non-positive size")


@dataclass(frozen=True)
class Alloc:
    tensor: str


@dataclass(frozen=True)
class Kernel:
    """One compute kernel: operand names, work, and traffic factors.

    ``read_factor``/``write_factor`` scale the memory traffic relative to the
    operands' logical size, modelling cache-blocking re-reads inside oneDNN
    kernels (a VGG-class kernel re-reads its spatially-large inputs more than
    a ResNet-class one). ``read_sensitivity`` is the fraction of NVRAM read
    service time the kernel cannot hide behind compute — the paper finds
    "some operations are not sensitive to the bandwidth of their read-only
    arguments" (ResNet/DenseNet) while "the kernels composing VGG are more
    sensitive to read bandwidth" (Section V). See EXPERIMENTS.md calibration
    notes.
    """

    name: str
    reads: tuple[str, ...]
    writes: tuple[str, ...]
    flops: float
    phase: str = "forward"  # forward | backward | update
    read_factor: float = 1.0
    write_factor: float = 1.0
    read_sensitivity: float = 1.0
    # Hints are *selective* (Section III-E inserts them per call site):
    # scan-like kernels set hinted=False so the executor does not announce
    # will_read/will_write for their operands — a full-table pass should
    # not trigger prefetching or write-migrations.
    hinted: bool = True


@dataclass(frozen=True)
class Free:
    """Semantic death point of a tensor (raw traces only)."""

    tensor: str


@dataclass(frozen=True)
class Retire:
    """Eagerly reclaim a tensor (annotated traces, M enabled)."""

    tensor: str


@dataclass(frozen=True)
class GcDefer:
    """The tensor is dead, but reclamation waits for the collector."""

    tensor: str


@dataclass(frozen=True)
class Archive:
    """Table II ``archive``: not used for some time; prefer as a victim."""

    tensor: str


@dataclass(frozen=True)
class WillRead:
    """Table II ``will_read``, issued explicitly ahead of the kernel.

    The executor also issues implicit will_read/will_write immediately
    before each kernel; explicit events exist so the annotation pass can
    give the policy *lookahead* (prefetches overlap with preceding kernels
    when the copy engine is asynchronous)."""

    tensor: str


@dataclass(frozen=True)
class WillWrite:
    """Table II ``will_write``, issued explicitly ahead of the kernel."""

    tensor: str


@dataclass(frozen=True)
class IterEnd:
    """End of one training iteration (GC + defragmentation point)."""


Event = (
    Alloc | Kernel | Free | Retire | GcDefer | Archive | WillRead | WillWrite
    | IterEnd
)


@dataclass
class KernelTrace:
    """A tensor table plus an ordered event stream for one iteration."""

    tensors: dict[str, TensorSpec] = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)
    name: str = "trace"

    # -- construction helpers ----------------------------------------------

    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        if spec.name in self.tensors:
            raise TraceError(f"duplicate tensor {spec.name!r}")
        self.tensors[spec.name] = spec
        return spec

    def tensor(self, name: str) -> TensorSpec:
        try:
            return self.tensors[name]
        except KeyError:
            raise TraceError(f"unknown tensor {name!r} in {self.name!r}") from None

    def append(self, event: Event) -> None:
        self.events.append(event)

    def kernels(self) -> Iterator[Kernel]:
        return (e for e in self.events if isinstance(e, Kernel))

    # -- derived metrics ------------------------------------------------------

    def peak_live_bytes(self) -> int:
        """Maximum bytes simultaneously live — Table III's 'footprint'.

        Persistent tensors count from their first Alloc onward; others
        between Alloc and Free/Retire/GcDefer (a GC-deferred tensor is
        semantically dead, so it does not count toward the *minimum* memory
        footprint the paper reports).
        """
        live = 0
        peak = 0
        sizes = {name: spec.nbytes for name, spec in self.tensors.items()}
        seen: set[str] = set()
        for event in self.events:
            if isinstance(event, Alloc) and event.tensor not in seen:
                seen.add(event.tensor)
                live += sizes[event.tensor]
                peak = max(peak, live)
            elif isinstance(event, (Free, Retire, GcDefer)):
                live -= sizes[event.tensor]
        return peak

    def total_kernel_flops(self) -> float:
        return sum(k.flops for k in self.kernels())

    def total_allocated_bytes(self) -> int:
        seen: set[str] = set()
        total = 0
        for event in self.events:
            if isinstance(event, Alloc) and event.tensor not in seen:
                seen.add(event.tensor)
                total += self.tensors[event.tensor].nbytes
        return total

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Reject inconsistent traces (use-before-alloc, use-after-free...)."""
        live: set[str] = set()
        dead: set[str] = set()

        def check_use(name: str, what: str) -> None:
            if name not in self.tensors:
                raise TraceError(f"{what} of unknown tensor {name!r}")
            if name in dead:
                raise TraceError(f"{what} of dead tensor {name!r}")
            if name not in live:
                raise TraceError(f"{what} of unallocated tensor {name!r}")

        for event in self.events:
            if isinstance(event, Alloc):
                if event.tensor not in self.tensors:
                    raise TraceError(f"Alloc of unknown tensor {event.tensor!r}")
                if event.tensor in live:
                    raise TraceError(f"double Alloc of {event.tensor!r}")
                if event.tensor in dead:
                    raise TraceError(f"Alloc of dead tensor {event.tensor!r}")
                live.add(event.tensor)
            elif isinstance(event, Kernel):
                for name in event.reads:
                    check_use(name, f"kernel {event.name!r} read")
                for name in event.writes:
                    check_use(name, f"kernel {event.name!r} write")
            elif isinstance(event, (Free, Retire, GcDefer)):
                check_use(event.tensor, type(event).__name__)
                if self.tensors[event.tensor].persistent:
                    raise TraceError(
                        f"persistent tensor {event.tensor!r} cannot be freed"
                    )
                live.remove(event.tensor)
                dead.add(event.tensor)
            elif isinstance(event, (Archive, WillRead, WillWrite)):
                check_use(event.tensor, type(event).__name__)
        for name in live:
            if not self.tensors[name].persistent:
                raise TraceError(f"non-persistent tensor {name!r} never freed")

    def with_events(self, events: Iterable[Event], suffix: str) -> "KernelTrace":
        """A sibling trace with the same tensor table but new events."""
        return KernelTrace(
            tensors=dict(self.tensors),
            events=list(events),
            name=f"{self.name}:{suffix}",
        )

    def scaled(self, factor: int) -> "KernelTrace":
        """Shrink every tensor (and kernel flops) by an integer factor.

        Used to run paper-shaped workloads quickly; sizes keep their relative
        proportions so placement behaviour is preserved (pair with equally
        scaled device capacities).
        """
        if factor < 1:
            raise TraceError(f"scale factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        tensors = {
            name: replace(spec, nbytes=max(64, spec.nbytes // factor))
            for name, spec in self.tensors.items()
        }
        events: list[Event] = [
            replace(e, flops=e.flops / factor) if isinstance(e, Kernel) else e
            for e in self.events
        ]
        return KernelTrace(
            tensors=tensors, events=events, name=f"{self.name}/scale{factor}"
        )
