"""The OOM escalation ladder (docs/robustness.md).

When an allocation fails *after* the policy has already done its own
eviction, the runtime does not give up — it climbs a ladder of progressively
heavier recovery steps, retrying the allocation after each rung that acted:

1. **collect** — run deferred garbage collection (objects the application
   has logically retired but the collector has not yet freed);
2. **evict**  — ask the policy to free a contiguous span via
   :meth:`~repro.core.policy_api.Policy.handle_pressure` (Listing 2's
   ``evictfrom`` under the hood);
3. **defrag** — compact the device's heap. This also cures *injected*
   fragmentation faults (the heap notifies the fault injector), which is why
   the rung retries even when no block physically moved;
4. **fallback** — give up on the requested device and allocate on another
   tier (slower, but the run survives).

Every rung emits a ``recovery_step`` trace event carrying the cause chain
(step, device, bytes, whether it acted); a successful retry emits
``recovery``. If every applicable rung fails, the ladder raises
:class:`~repro.errors.RecoveryExhaustedError` — a typed, diagnosable abort
listing the steps that were attempted, chained to the original OOM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import OutOfMemoryError, RecoveryExhaustedError
from repro.telemetry import trace as tracing
from repro.telemetry.trace import NULL_TRACER

__all__ = [
    "LadderHooks",
    "recover_allocation",
    "session_hooks",
    "COLLECT",
    "EVICT",
    "DEFRAG",
    "FALLBACK",
    "LADDER_STEPS",
]

T = TypeVar("T")

COLLECT = "collect"
EVICT = "evict"
DEFRAG = "defrag"
FALLBACK = "fallback"
LADDER_STEPS = (COLLECT, EVICT, DEFRAG, FALLBACK)


@dataclass
class LadderHooks:
    """The recovery actions available to one caller of the ladder.

    Each hook is optional — a ``None`` rung is skipped (and not counted as
    attempted). Hooks return whether they *acted*; the ladder only retries
    the allocation after a rung that did (except ``defrag``, which always
    retries — compaction can cure injected fragmentation without moving a
    single block). ``fallback`` is different: it performs the allocation
    itself on another device and returns the (truthy) result.
    """

    collect: Callable[[], bool] | None = None
    evict: Callable[[str, int], bool] | None = None
    defrag: Callable[[str], bool] | None = None
    fallback: Callable[[], Any] | None = None


def recover_allocation(
    attempt: Callable[[], T],
    error: OutOfMemoryError,
    hooks: LadderHooks,
    *,
    tracer: Any = NULL_TRACER,
    metrics: Any = None,
    tenant: str = "",
) -> T | Any:
    """Climb the ladder until ``attempt()`` succeeds or rungs run out.

    ``attempt`` re-runs the failed allocation; ``error`` is the
    :class:`OutOfMemoryError` that triggered recovery (its ``device`` and
    ``requested`` parameterise the rungs; it is re-read from each failed
    retry so the ladder always targets the *current* failure). ``tenant``
    attributes every ladder event to the tenant whose allocation is being
    recovered, so multi-tenant escalations are separable in ``repro
    explain`` and flight dumps. Raises :class:`RecoveryExhaustedError`
    chained to the original error when nothing worked.
    """
    first_error = error
    steps_taken: list[str] = []

    def _emit_step(step: str, acted: bool) -> None:
        if tracer.enabled:
            tracer.emit(
                tracing.RECOVERY_STEP,
                step=step,
                device=error.device,
                requested=error.requested,
                free=error.free,
                acted=acted,
                tenant=tenant,
            )
        elif tracer.monitoring:
            tracer.monitor.note_recovery_step(tracer.clock.now, step, tenant)

    def _succeed(step: str, result: T) -> T:
        if tracer.enabled:
            tracer.emit(
                tracing.RECOVERY,
                step=step,
                device=error.device,
                requested=error.requested,
                steps=",".join(steps_taken),
                tenant=tenant,
            )
        elif tracer.monitoring:
            tracer.monitor.note_recovery(tracer.clock.now, step)
        if metrics is not None:
            metrics.counter("recovery.success", step=step).inc()
        return result

    for step in (COLLECT, EVICT, DEFRAG):
        hook = getattr(hooks, step)
        if hook is None:
            continue
        steps_taken.append(step)
        with tracer.scope(f"recover:{step}", error.device):
            if step == COLLECT:
                acted = bool(hook())
            elif step == EVICT:
                acted = bool(hook(error.device, error.requested))
            else:
                acted = bool(hook(error.device))
            _emit_step(step, acted)
            if not acted and step != DEFRAG:
                continue
            try:
                result = attempt()
            except OutOfMemoryError as retry_error:
                error = retry_error
                continue
        return _succeed(step, result)

    if hooks.fallback is not None:
        steps_taken.append(FALLBACK)
        with tracer.scope(f"recover:{FALLBACK}", error.device):
            result = hooks.fallback()
            _emit_step(FALLBACK, bool(result))
        if result:
            return _succeed(FALLBACK, result)

    if metrics is not None:
        metrics.counter("recovery.exhausted").inc()
    # Announce the exhaustion as a final ladder step before raising: the
    # runtime monitor treats it as an escalation and dumps the flight
    # recorder, so the typed abort ships with its last-N-events context.
    _emit_step("exhausted", False)
    raise RecoveryExhaustedError(
        error.device, error.requested, error.free, steps_taken
    ) from first_error


def session_hooks(session: Any) -> LadderHooks:
    """Ladder hooks for direct :class:`~repro.core.session.Session` use.

    Sessions have no garbage collector (that is the executor's), so the
    ladder starts at the eviction rung: policy ``handle_pressure``, then a
    per-device defragmentation pass. Used by the chaos harness around array
    creation; executor runs build their own hooks with collect + fallback.
    """

    def defrag(device: str) -> bool:
        session.manager.defragment(device)
        return True

    return LadderHooks(
        collect=None,
        evict=session.policy.handle_pressure,
        defrag=defrag,
        fallback=None,
    )
