"""A Julia-style garbage collector model.

The paper's non-**M** modes rely on the language runtime's GC to reclaim
dead tensors: "Disabling this optimization means we need to rely on the GC
for resource management which involves explicitly triggering collection when
memory pressure is detected" (Section IV). The observable consequences the
model must reproduce (Figure 3):

* heap occupancy grows monotonically between collections — dead data stays
  resident (and, in 2LM, dirty in the DRAM cache);
* a collection is triggered by allocation volume (Julia's heuristic is
  allocation-count/volume based) or explicitly at iteration end;
* collections have a pause cost proportional to the number of live objects
  (mark phase) plus a fixed sweep overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.units import GB

__all__ = ["GcConfig", "GarbageCollector"]


@dataclass(frozen=True)
class GcConfig:
    """Collector tuning.

    ``trigger_bytes`` is the allocation volume between automatic
    collections; the paper-scale experiments set it relative to the model
    footprint so the unoptimised runs collect roughly once mid-iteration,
    matching the single cliff in Figure 3.
    """

    trigger_bytes: int = 400 * GB
    pause_per_object: float = 2e-6
    base_pause: float = 0.05


class GarbageCollector:
    """Deferred-free collector over trace tensors."""

    def __init__(
        self,
        config: GcConfig,
        release: Callable[[str], None],
        live_objects: Callable[[], int],
    ) -> None:
        self.config = config
        self._release = release
        self._live_objects = live_objects
        self._deferred: list[str] = []
        self._allocated_since_collect = 0
        self.collections = 0
        self.reclaimed_objects = 0
        self.total_pause = 0.0

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    def defer(self, tensor: str) -> None:
        """Mark a tensor dead; it stays resident until the next collection."""
        self._deferred.append(tensor)

    def on_alloc(self, nbytes: int) -> None:
        self._allocated_since_collect += nbytes

    def should_collect(self) -> bool:
        return (
            self._allocated_since_collect >= self.config.trigger_bytes
            and self._deferred
        )

    def collect(self) -> float:
        """Reclaim everything deferred; returns the modelled pause seconds."""
        pause = self.config.base_pause + (
            self.config.pause_per_object * self._live_objects()
        )
        for tensor in self._deferred:
            self._release(tensor)
        self.reclaimed_objects += len(self._deferred)
        self._deferred.clear()
        self._allocated_since_collect = 0
        self.collections += 1
        self.total_pause += pause
        return pause
