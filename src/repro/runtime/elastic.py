"""Elastic operations: deterministic snapshot/restore of a running system.

A run paused at a kernel boundary can be serialized — heaps and free lists,
the object table with residency and dirty bits, the virtual clock with its
per-category busy accounting, in-flight copy-engine records, per-tenant
quotas, and the executor's position in the trace — and restored in a fresh
process, where it continues to a **bit-identical** final result (the golden
virtual-time digests pin this, in both virtual and real-backed modes).

Mechanics
---------

The snapshot is a pickle of the :class:`~repro.experiments.common.PreparedRun`
graph: pickle preserves the shared references that make the runtime work
(one clock shared by session, adapter, and copy engine; one heap referenced
by every region on it), and the few unpicklable members have
``__getstate__`` hooks that drop them (the copy engine's thread pool is
rebuilt lazily; the clock's bound per-stream busy map only exists mid-
schedule, and snapshots are only taken between scheduler runs). Two pieces
of *process-global* state ride alongside the object graph:

* **id watermarks** — object/region ids come from module-level counters, so
  a fresh process would restart them at zero and collide with ids recorded
  in the snapshot. :func:`load_snapshot` raises the counters to the saved
  watermarks (``restore_id_floor``) before the run continues.
* **format envelope** — a magic/version header so a stale or foreign file
  fails loudly instead of unpickling garbage.

Pausing is cooperative: :class:`~repro.runtime.executor.Executor` counts
kernels and, at ``pause_after``, parks its mid-iteration partials in a
picklable cursor and ends the stream. Nothing else in the step sequence
changes, so the resumed run replays the exact clock arithmetic of an
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass

from repro.core.object import id_watermarks, restore_id_floor
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentConfig,
    ModeResult,
    PreparedRun,
    _trace_for,
    prepare_trace_mode,
)
from repro.telemetry import trace as tracing

__all__ = [
    "RuntimeSnapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "checkpoint_model_mode",
    "checkpoint_trace_mode",
    "digest_mode_result",
    "load_snapshot",
    "resume_snapshot",
    "save_snapshot",
]

SNAPSHOT_FORMAT = "repro-runtime-snapshot"
SNAPSHOT_VERSION = 1


@dataclass
class RuntimeSnapshot:
    """A paused run plus the process-global state it needs to continue.

    ``kind`` names the payload shape: ``"mode-run"`` payloads are
    :class:`PreparedRun` objects (experiment runs paused mid-trace);
    ``"chaos"`` payloads are the chaos harness's scripted-workload state
    (see :mod:`repro.faults.chaos`). The envelope machinery is shared.
    """

    kind: str
    payload: object
    watermarks: dict[str, int]
    virtual_time: float
    kernels_done: int
    label: str = ""


# -- envelope ---------------------------------------------------------------


def save_snapshot(snapshot: RuntimeSnapshot, path: str) -> str:
    """Write ``snapshot`` to ``path``; returns the path."""
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "snapshot": snapshot,
    }
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_snapshot(path: str) -> RuntimeSnapshot:
    """Read a snapshot and restore the process-global id floors.

    Raising the id counters happens here — not in :func:`resume_snapshot` —
    because *any* use of the restored object graph (even inspection) must
    not mint ids that collide with ones recorded in the snapshot.
    """
    with open(path, "rb") as fh:
        try:
            envelope = pickle.load(fh)
        except (pickle.UnpicklingError, EOFError) as err:
            raise ConfigurationError(
                f"{path!r} is not a runtime snapshot: {err}"
            ) from None
    if (
        not isinstance(envelope, dict)
        or envelope.get("format") != SNAPSHOT_FORMAT
    ):
        raise ConfigurationError(f"{path!r} is not a runtime snapshot")
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"snapshot version {version!r} unsupported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    snapshot = envelope["snapshot"]
    restore_id_floor(snapshot.watermarks)
    return snapshot


# -- checkpointable experiment runs ----------------------------------------


def _emit_elastic(prepared: PreparedRun, kind: str, label: str) -> None:
    tracer = prepared.adapter.tracer
    clock = prepared.adapter.clock
    if tracer.enabled:
        tracer.emit(kind, label=label, kernels=prepared.executor.kernels_done)
    elif tracer.monitoring:
        tracer.monitor.note_elastic(kind, clock.now, label)


def _snapshot_of(prepared: PreparedRun) -> RuntimeSnapshot:
    label = f"{prepared.model}@k{prepared.executor.kernels_done}"
    _emit_elastic(prepared, tracing.SNAPSHOT, label)
    return RuntimeSnapshot(
        kind="mode-run",
        payload=prepared,
        watermarks=id_watermarks(),
        virtual_time=prepared.adapter.clock.now,
        kernels_done=prepared.executor.kernels_done,
        label=label,
    )


def checkpoint_trace_mode(
    trace,
    mode_name,
    config: ExperimentConfig,
    *,
    pause_after: int,
    model_label: str = "",
) -> RuntimeSnapshot | ModeResult:
    """Run a trace, pausing after ``pause_after`` kernels.

    Returns a :class:`RuntimeSnapshot` when the pause fired, or the
    finished :class:`ModeResult` when the run completed first (fewer
    kernels than ``pause_after``).
    """
    if pause_after < 1:
        raise ConfigurationError(
            f"pause_after must be >= 1, got {pause_after}"
        )
    prepared = prepare_trace_mode(
        trace, mode_name, config, model_label=model_label
    )
    prepared.executor.pause_after = pause_after
    run = prepared.execute()
    if run is not None:
        return prepared.finish(run)
    return _snapshot_of(prepared)


def checkpoint_model_mode(
    model_key: str,
    mode_name: str,
    config: ExperimentConfig,
    *,
    pause_after: int,
) -> RuntimeSnapshot | ModeResult:
    """Model-registry convenience wrapper over :func:`checkpoint_trace_mode`."""
    trace, _ = _trace_for(model_key, config)
    return checkpoint_trace_mode(
        trace, mode_name, config, pause_after=pause_after,
        model_label=model_key,
    )


def resume_snapshot(
    snapshot: RuntimeSnapshot, *, pause_after: int | None = None
) -> RuntimeSnapshot | ModeResult:
    """Continue a ``mode-run`` snapshot where it paused.

    ``pause_after`` (an absolute kernel count, like the one that produced
    the snapshot) re-pauses the run, allowing chained checkpoints; the
    default runs to completion and returns the :class:`ModeResult`.
    """
    if snapshot.kind != "mode-run":
        raise ConfigurationError(
            f"cannot resume snapshot of kind {snapshot.kind!r} here"
        )
    prepared = snapshot.payload
    if pause_after is not None and pause_after <= snapshot.kernels_done:
        raise ConfigurationError(
            f"pause_after={pause_after} is not past the snapshot's "
            f"{snapshot.kernels_done} completed kernels"
        )
    _emit_elastic(prepared, tracing.RESTORE, snapshot.label)
    prepared.executor.pause_after = pause_after
    run = prepared.execute()
    if run is None:
        return _snapshot_of(prepared)
    return prepared.finish(run)


# -- digests ----------------------------------------------------------------


def _hex(value: float) -> str:
    return float(value).hex()


def _iteration_dump(it) -> dict:
    return {
        "seconds": _hex(it.seconds),
        "start": _hex(it.start_time),
        "end": _hex(it.end_time),
        "compute": _hex(it.compute_seconds),
        "kernel_memory": _hex(it.kernel_memory_seconds),
        "movement": _hex(it.movement_seconds),
        "gc_seconds": _hex(it.gc_seconds),
        "gc_collections": it.gc_collections,
        "traffic": {
            device: [snap.read_bytes, snap.write_bytes]
            for device, snap in sorted(it.traffic.items())
        },
        "cache": (
            None
            if it.cache is None
            else [it.cache.hits, it.cache.clean_misses, it.cache.dirty_misses]
        ),
        "peak_occupancy": dict(sorted(it.peak_occupancy.items())),
        "policy_stats": dict(sorted(it.policy_stats.items())),
    }


def digest_mode_result(result: ModeResult) -> str:
    """SHA-256 over full-precision (``float.hex``) dumps of one mode run.

    The same shape the golden-digest tests hash (per-iteration metrics plus
    every timeline sample), scoped to a single :class:`ModeResult` — the
    unit the snapshot round-trip contract is stated over: an interrupted-
    and-restored run must produce the same digest as an uninterrupted one.
    """
    run = result.run
    dump = {
        "footprint": result.footprint_bytes,
        "iterations": [_iteration_dump(it) for it in run.iterations],
        "timelines": {
            name: [
                [_hex(t), _hex(v), label]
                for t, v, label in timeline.to_dict()["samples"]
            ]
            for name, timeline in sorted(run.occupancy_timeline.items())
        },
    }
    blob = json.dumps(dump, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()
