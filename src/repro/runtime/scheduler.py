"""The multi-stream scheduler: concurrent tenant workloads on one runtime.

The executor expresses a workload as a *stream*: a generator that performs
trace events against its adapter and, at every kernel boundary, **yields the
kernel's duration to the scheduler** instead of advancing the clock itself
(``yield (seconds, category)``). The scheduler owns the shared
:class:`~repro.sim.clock.SimClock` and an
:class:`~repro.sim.events.EventQueue`; it repeatedly:

1. pops the stream with the earliest local virtual time (FIFO among ties);
2. *activates* it — seeks the clock to the stream's local time, binds the
   stream's private busy map, tags the tracer so every event emitted during
   the step carries the stream id, and announces the tenant to the data
   manager for quota accounting;
3. resumes the generator for one step (everything up to its next yield runs
   atomically at the stream's advancing local time: allocations, hints,
   synchronous copies, stalls);
4. applies the yielded duration with ``clock.advance`` and requeues the
   stream at its new local time.

**Granularity.** Streams interleave at kernel-yield granularity: the stream
with the smallest local time always runs next, and everything inside one
step is atomic. Cross-stream interactions (heap pressure, DMA-channel
queueing) are therefore ordered by step start times, deterministic across
runs — the conservative coarse-grain discretisation heterogeneous-memory
simulators typically use.

**Single-stream reduction.** With exactly one stream the scheduler has
nothing to arbitrate: it resumes the lone generator in a loop, applies each
yielded advance immediately, and never seeks the clock (a stream's resume
time always equals ``clock.now``) nor binds a private busy map. The
resulting sequence of clock operations is exactly the pre-scheduler
``Executor.run`` loop — the golden virtual-time digests pin this.

**Dynamic schedules.** A scheduler built with ``dynamic=True`` additionally
accepts :meth:`~StreamScheduler.spawn` calls *during* :meth:`run` — from
inside another stream's step — so open-loop workloads (``repro serve``) can
admit request streams as they arrive and retire them as they depart. A
mid-run spawn becomes runnable no earlier than the spawning stream's current
local time, which keeps the event queue causal: the new stream can never be
scheduled into the past. Dynamic mode always takes the multi-stream path,
even with a single initial stream, so it is opt-in and leaves the
single-stream reduction above bit-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ConfigurationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue

__all__ = ["Stream", "StreamScheduler"]

# A stream generator yields (seconds, busy-category) advance requests and
# returns its final result via StopIteration.value.
StreamGen = Generator[tuple[float, str], None, Any]


class Stream:
    """One schedulable execution stream (a tenant's workload)."""

    __slots__ = (
        "name", "gen", "activate", "local_time", "busy",
        "done", "result", "error",
    )

    def __init__(
        self,
        name: str,
        gen: StreamGen,
        *,
        activate: Callable[[], None] | None = None,
    ) -> None:
        self.name = name
        self.gen = gen
        # Optional per-activation hook (e.g. announce the tenant to the
        # shared DataManager for quota accounting).
        self.activate = activate
        self.local_time = 0.0
        # Per-stream busy-time accounting (bound into the clock while the
        # stream runs, multi-stream schedules only).
        self.busy: dict[str, float] = {}
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else f"t={self.local_time:.6f}"
        return f"Stream({self.name!r}, {state})"


class StreamScheduler:
    """Drives one or more streams over a shared clock in virtual-time order."""

    def __init__(
        self, clock: SimClock, *, tracer: Any = None, dynamic: bool = False
    ) -> None:
        self.clock = clock
        # The tracer to tag with the active stream id; ``None`` or a
        # disabled tracer is never touched.
        self.tracer = tracer
        # Dynamic schedules accept spawn() mid-run (open-loop arrivals) and
        # always take the multi-stream path so the event queue exists.
        self.dynamic = dynamic
        self.streams: list[Stream] = []
        self._started = False
        self._queue: EventQueue | None = None

    def spawn(
        self,
        name: str,
        gen: StreamGen,
        *,
        activate: Callable[[], None] | None = None,
        start_time: float | None = None,
    ) -> Stream:
        """Register a stream; it becomes runnable at ``start_time``
        (default: the clock's current time).

        Before :meth:`run` this only registers the stream. During a run it
        is allowed only on a ``dynamic=True`` scheduler: the stream joins
        the live event queue, runnable no earlier than the current virtual
        time (mid-run arrivals cannot be scheduled into the past).
        """
        if self._started and not (self.dynamic and self._queue is not None):
            raise ConfigurationError(
                "cannot spawn streams mid-run (build the scheduler with "
                "dynamic=True for open-loop arrivals)"
            )
        if any(s.name == name for s in self.streams):
            raise ConfigurationError(f"duplicate stream name {name!r}")
        stream = Stream(name, gen, activate=activate)
        stream.local_time = (
            self.clock.now if start_time is None else start_time
        )
        if self._started:
            stream.local_time = max(stream.local_time, self.clock.now)
        self.streams.append(stream)
        if self._started and self._queue is not None:
            self._queue.push(stream.local_time, stream)
        return stream

    def results(self) -> dict[str, Any]:
        """Stream name -> generator return value (after :meth:`run`)."""
        return {s.name: s.result for s in self.streams}

    def find(self, name: str) -> Stream | None:
        """The stream registered under ``name``, if any."""
        for stream in self.streams:
            if stream.name == name:
                return stream
        return None

    def cancel(self, name: str) -> bool:
        """Cancel a stream: close its generator and retire it from scheduling.

        Safe to call before, during (from another stream's step), or after
        the run; a cancelled stream is skipped when the event queue next pops
        it. Returns ``True`` when a live stream was cancelled, ``False`` when
        the name is unknown or the stream already finished. Closing the
        generator runs its ``finally`` blocks (unpins, scope pops), so tenant
        teardown goes through the normal unwind path.
        """
        stream = self.find(name)
        if stream is None or stream.done:
            return False
        stream.done = True
        stream.gen.close()
        stream.local_time = max(stream.local_time, self.clock.now)
        return True

    # -- driving ------------------------------------------------------------

    def run(self) -> None:
        """Run every stream to completion, interleaved in virtual-time order.

        A stream that raises stops the whole schedule: concurrent tenants
        share one memory system, so continuing past a corrupted step could
        charge phantom time to the survivors. The exception propagates with
        ``stream.error`` set for post-mortems.
        """
        if self._started:
            raise ConfigurationError("scheduler already ran")
        self._started = True
        if not self.streams:
            return
        if len(self.streams) == 1 and not self.dynamic:
            self._run_single(self.streams[0])
            return
        self._run_many()

    def _run_single(self, stream: Stream) -> None:
        """The sequential fast path: no queue, no seeks, no busy rebinding.

        Behaviour (and clock arithmetic) is bit-identical to the historical
        single-loop executor: resume, advance by whatever was yielded,
        repeat.
        """
        clock = self.clock
        gen = stream.gen
        self._tag(stream.name)
        if stream.activate is not None:
            # One activation is enough: no other stream ever takes over.
            stream.activate()
        try:
            while True:
                try:
                    seconds, category = next(gen)
                except StopIteration as stop:
                    stream.result = stop.value
                    stream.done = True
                    break
                if seconds:
                    clock.advance(seconds, category)
        except BaseException as exc:
            stream.error = exc
            self._flight_dump(stream.name)
            raise
        finally:
            stream.local_time = clock.now
            self._tag("")

    def _run_many(self) -> None:
        clock = self.clock
        queue = EventQueue()
        for stream in self.streams:
            queue.push(stream.local_time, stream)
        # Expose the live queue so dynamic spawn() can join mid-run.
        self._queue = queue
        active: Stream | None = None
        try:
            while queue:
                event = queue.pop()
                stream = event.payload
                if stream.done:  # cancelled while queued (tenant detach)
                    continue
                active = stream
                # Activate: the clock becomes this stream's local timeline.
                clock.seek(event.time)
                clock.bind_stream(stream.busy)
                self._tag(stream.name)
                if stream.activate is not None:
                    stream.activate()
                try:
                    seconds, category = next(stream.gen)
                except StopIteration as stop:
                    stream.result = stop.value
                    stream.done = True
                    stream.local_time = clock.now
                    continue
                if seconds:
                    clock.advance(seconds, category)
                stream.local_time = clock.now
                queue.push(stream.local_time, stream)
        except BaseException as exc:
            if active is not None:
                active.error = exc
                self._flight_dump(active.name)
            raise
        finally:
            self._queue = None
            clock.bind_stream(None)
            self._tag("")
            # Leave the clock at the frontier: the latest local time any
            # stream reached (the co-run's end-to-end makespan).
            clock.seek(max((s.local_time for s in self.streams), default=clock.now))

    def _tag(self, name: str) -> None:
        tracer = self.tracer
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.stream = name

    def _flight_dump(self, stream_name: str) -> None:
        """Ask the runtime monitor (if one is attached) for a black box.

        A stream abort ends the whole schedule, so the last-N-events context
        is captured *now*, before unwinding discards the runtime state.
        """
        monitor = getattr(self.tracer, "monitor", None)
        if monitor is not None:
            monitor.record_escalation(
                f"stream_error:{stream_name}", self.clock.now
            )
