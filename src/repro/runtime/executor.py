"""Trace executor: runs one workload against either memory system.

The executor walks an annotated :class:`~repro.workloads.trace.KernelTrace`
event by event, delegating memory behaviour to a *system adapter*:

* :class:`CachedArraysAdapter` — objects placed by a policy over a
  :class:`~repro.core.Session`; ``will_read``/``will_write`` hints fire per
  kernel, residency is ensured and pinned, the roofline cost model charges
  each operand at its device's bandwidth, and policy-driven copies advance
  the clock under the ``movement`` category.
* :class:`TwoLMAdapter` — tensors live in a flat NVRAM space behind the
  hardware DRAM cache; every operand access streams through the cache
  simulator, which yields both the timing and the Figure 4/5 counters.

Identical traces + identical device models, differing only in the memory
system — the controlled comparison the paper runs on real hardware.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.object import MemObject
from repro.core.policy_api import AccessIntent
from repro.core.session import Session, issue_hints, resolve_residency
from repro.errors import OutOfMemoryError, TraceError
from repro.runtime.gc import GarbageCollector, GcConfig
from repro.runtime.recovery import LadderHooks, recover_allocation
from repro.runtime.kernel import ExecutionParams, KernelTiming, kernel_timing
from repro.runtime.scheduler import StreamGen, StreamScheduler
from repro.sim.clock import SimClock, snap_residue
from repro.telemetry import trace as tracing
from repro.telemetry.counters import TrafficSnapshot
from repro.telemetry.timeline import Timeline
from repro.telemetry.trace import TraceEvent
from repro.twolm.dramcache import CacheStats
from repro.twolm.system import TwoLMSystem
from repro.workloads.trace import (
    Alloc,
    Archive,
    GcDefer,
    IterEnd,
    Kernel,
    KernelTrace,
    Retire,
    TensorSpec,
    WillRead,
    WillWrite,
)

__all__ = [
    "SystemAdapter",
    "CachedArraysAdapter",
    "TwoLMAdapter",
    "Executor",
    "IterationResult",
    "RunResult",
]

KERNEL = "kernel"
MOVEMENT = "movement"
MOVEMENT_WAIT = "movement_wait"  # async mode: stalls on in-flight copies
GC = "gc"


class SystemAdapter(abc.ABC):
    """What the executor needs from a memory system."""

    clock: SimClock
    # Structured event tracer; adapters that support tracing override this
    # per instance. The executor emits kernel-boundary spans through it.
    tracer: "tracing.Tracer | tracing.NullTracer" = tracing.NULL_TRACER
    # Tenant owning this adapter's allocations (recovery-ladder attribution);
    # single-tenant baselines leave it empty.
    tenant: str = ""

    @abc.abstractmethod
    def alloc(self, spec: TensorSpec) -> None: ...

    @abc.abstractmethod
    def exists(self, name: str) -> bool: ...

    @abc.abstractmethod
    def release(self, name: str) -> None: ...

    @abc.abstractmethod
    def kernel(self, kernel: Kernel, trace: KernelTrace) -> KernelTiming: ...

    @abc.abstractmethod
    def archive(self, name: str) -> None: ...

    def hint_read(self, name: str) -> None:
        """Explicit early will_read (lookahead annotation); default no-op."""

    def hint_write(self, name: str) -> None:
        """Explicit early will_write; default no-op."""

    @abc.abstractmethod
    def occupancy(self) -> dict[str, int]: ...

    @abc.abstractmethod
    def traffic(self) -> dict[str, TrafficSnapshot]: ...

    @abc.abstractmethod
    def live_count(self) -> int: ...

    def cache_stats(self) -> CacheStats | None:
        return None

    def iteration_end(self) -> None:
        """Between-iteration housekeeping (defragmentation for CA)."""

    def policy_stats(self) -> dict[str, int]:
        return {}

    # -- recovery-ladder hooks (docs/robustness.md); defaults decline --------

    @property
    def metrics(self):
        """The system's metrics registry, if it has one (for recovery counters)."""
        return None

    def make_room(self, device: str, nbytes: int) -> bool:
        """Ladder rung 2: free a contiguous span on ``device``; default declines."""
        return False

    def defrag_device(self, device: str) -> bool:
        """Ladder rung 3: compact ``device``'s heap; default declines."""
        return False

    def alloc_fallback(self, spec: TensorSpec) -> bool:
        """Ladder rung 4: allocate ``spec`` on *any* tier; default declines."""
        return False


class CachedArraysAdapter(SystemAdapter):
    """Run traces on a CachedArrays session (any policy)."""

    def __init__(self, session: Session, params: ExecutionParams) -> None:
        self.session = session
        self.params = params
        self.clock = session.clock
        self.tracer = session.tracer
        self.tenant = session.tenant
        self.objects: dict[str, MemObject] = {}
        self._kernel_count = 0

    def alloc(self, spec: TensorSpec) -> None:
        obj = self.session.new_object(spec.nbytes, spec.name)
        try:
            with self.tracer.scope("place", spec.name):
                self.session.policy.place(obj)
        except Exception:
            # Failed placement must not leak a region-less object: recovery
            # retries alloc() and would otherwise pile up orphans that
            # DataManager.check() sweeps see as live.
            self.session.manager.destroy_object(obj)
            raise
        self.objects[spec.name] = obj

    def exists(self, name: str) -> bool:
        return name in self.objects

    def release(self, name: str) -> None:
        obj = self.objects.pop(name)
        with self.tracer.hint("retire", name):
            self.session.policy.retire(obj)

    def archive(self, name: str) -> None:
        with self.tracer.hint("archive", name):
            self.session.policy.archive(self.objects[name])

    def hint_read(self, name: str) -> None:
        with self.tracer.hint("will_read", name):
            self.session.policy.will_read(self.objects[name])

    def hint_write(self, name: str) -> None:
        with self.tracer.hint("will_write", name):
            self.session.policy.will_write(self.objects[name])

    def kernel(self, kernel: Kernel, trace: KernelTrace) -> KernelTiming:
        policy = self.session.policy
        tracer = self.tracer
        objects = self.objects
        read_objs = [objects[name] for name in kernel.reads]
        write_objs = [objects[name] for name in kernel.writes]
        if kernel.hinted:
            issue_hints(policy, tracer, read_objs, write_objs)
        pinned: list[MemObject] = []
        # Residency is resolved once per unique object (write intent wins
        # for read+write operands) and pinned immediately, so no later
        # ensure can evict an operand that is already placed.
        intents: dict[int, tuple[MemObject, AccessIntent]] = {}
        for obj in read_objs:
            intents[obj.id] = (obj, AccessIntent.READ)
        for obj in write_objs:
            intents[obj.id] = (obj, AccessIntent.WRITE)
        try:
            resolve_residency(policy, tracer, intents.values(), pinned)
            # Asynchronous movement: the kernel cannot start until every
            # operand's in-flight copy has completed. The wait is clamped
            # at the source: ready_at sums can drift a few ULPs past the
            # clock, and those residues are not real stalls.
            ready_at = max(
                (obj.primary.ready_at for obj in pinned if obj.primary), default=0.0
            )
            wait = snap_residue(ready_at - self.clock.now, self.clock.now)
            if wait > 0:
                if tracer.enabled:
                    # Charge the stall to the operands still in flight,
                    # proportionally to how late each one is — the ledger
                    # uses this to blame wait time on specific objects.
                    now = self.clock.now
                    late = [
                        (obj.name, obj.primary.ready_at - now)
                        for obj in pinned
                        if obj.primary is not None and obj.primary.ready_at > now
                    ]
                    total_late = sum(remaining for _, remaining in late)
                    self.clock.advance(wait, MOVEMENT_WAIT)
                    tracer.emit(
                        tracing.STALL,
                        kernel=kernel.name,
                        seconds=wait,
                        objects=[name for name, _ in late],
                        charged=[
                            wait * remaining / total_late
                            for _, remaining in late
                        ] if total_late > 0 else [],
                    )
                else:
                    self.clock.advance(wait, MOVEMENT_WAIT)
                    if tracer.monitoring:
                        tracer.monitor.note_stall(
                            self.clock.now, wait, kernel.name
                        )
            reads: list[tuple] = []
            writes: list[tuple] = []
            for obj in read_objs:
                primary = obj.primary
                assert primary is not None
                nbytes = int(obj.size * kernel.read_factor)
                primary.heap.traffic.record_read(nbytes)
                reads.append((primary.heap.device, nbytes))
            for obj in write_objs:
                primary = obj.primary
                assert primary is not None
                nbytes = int(obj.size * kernel.write_factor)
                primary.heap.traffic.record_write(nbytes)
                writes.append((primary.heap.device, nbytes))
            timing = kernel_timing(
                kernel.flops,
                reads,
                writes,
                self.params,
                read_sensitivity=kernel.read_sensitivity,
            )
        finally:
            for obj in pinned:
                obj.unpin()
        policy.on_kernel_finish(read_objs, write_objs)
        self._kernel_count += 1
        paranoia = self.params.paranoia
        if paranoia > 0 and self._kernel_count % paranoia == 0:
            self._check_invariants()
        return timing

    def _check_invariants(self) -> None:
        """Paranoia mode: validate heap + policy invariants, trace the check."""
        self.session.manager.check_invariants()
        check = getattr(self.session.policy, "check_invariant", None)
        if check is not None:
            check()
        if self.tracer.enabled:
            self.tracer.emit(tracing.INVARIANT_CHECK, kernels=self._kernel_count)

    def occupancy(self) -> dict[str, int]:
        return self.session.occupancy()

    def traffic(self) -> dict[str, TrafficSnapshot]:
        return self.session.traffic()

    def live_count(self) -> int:
        return len(self.objects)

    def iteration_end(self) -> None:
        # Drain the DMA channel: an iteration is not over until its queued
        # evictions/prefetches have landed.
        engine = self.session.engine
        drain = engine.drain_wait()
        if drain > 0:
            tracer = self.tracer
            if tracer.enabled:
                # Blame the drain on the objects still in flight,
                # proportionally to how late each one lands (same charging
                # scheme as the kernel-entry stall above).
                late = engine.pending_labels(self.clock.now)
                total_late = sum(remaining for _, remaining in late)
                self.clock.advance(drain, MOVEMENT_WAIT)
                tracer.emit(
                    tracing.STALL,
                    kernel="iter_end_drain",
                    seconds=drain,
                    objects=[name for name, _ in late],
                    charged=[
                        drain * remaining / total_late
                        for _, remaining in late
                    ] if total_late > 0 else [],
                )
            else:
                self.clock.advance(drain, MOVEMENT_WAIT)
                if tracer.monitoring:
                    tracer.monitor.note_stall(
                        self.clock.now, drain, "iter_end_drain"
                    )
        self.session.defragment()
        self.session.policy.on_iteration_end()

    def policy_stats(self) -> dict[str, int]:
        stats = getattr(self.session.policy, "stats", None)
        return stats.as_dict() if stats is not None else {}

    # -- recovery-ladder hooks -----------------------------------------------

    @property
    def metrics(self):
        return self.session.metrics

    def make_room(self, device: str, nbytes: int) -> bool:
        with self.tracer.scope("pressure", device):
            return self.session.policy.handle_pressure(device, nbytes)

    def defrag_device(self, device: str) -> bool:
        self.session.manager.defragment(device)
        return True

    def alloc_fallback(self, spec: TensorSpec) -> bool:
        """Place the tensor on whichever tier still has room, bypassing the
        policy's (exhausted) placement preference."""
        manager = self.session.manager
        for device in manager.devices():
            region = manager.try_allocate(device, spec.nbytes)
            if region is None:
                continue
            obj = self.session.new_object(spec.nbytes, spec.name)
            manager.setprimary(obj, region)
            self.objects[spec.name] = obj
            return True
        return False


class TwoLMAdapter(SystemAdapter):
    """Run traces on the Memory-Mode (hardware DRAM cache) baseline."""

    def __init__(self, system: TwoLMSystem, params: ExecutionParams) -> None:
        self.system = system
        self.params = params
        self.clock = SimClock()
        self.tracer = tracing.NULL_TRACER
        self.offsets: dict[str, int] = {}
        self.sizes: dict[str, int] = {}

    def alloc(self, spec: TensorSpec) -> None:
        offset = self.system.allocate(spec.nbytes)
        self.offsets[spec.name] = offset
        self.sizes[spec.name] = spec.nbytes
        if self.tracer.enabled:
            self.tracer.emit(
                tracing.ALLOC,
                device=self.system.nvram.name,
                obj=spec.name,
                offset=offset,
                nbytes=spec.nbytes,
            )
        elif self.tracer.monitoring:
            self.tracer.monitor.note_alloc(
                self.clock.now, self.system.nvram.name, spec.nbytes,
                offset, self.tracer.stream,
            )

    def exists(self, name: str) -> bool:
        return name in self.offsets

    def release(self, name: str) -> None:
        offset = self.offsets.pop(name)
        nbytes = self.sizes.pop(name)
        self.system.free(offset)
        if self.tracer.enabled:
            self.tracer.emit(
                tracing.FREE,
                device=self.system.nvram.name,
                obj=name,
                offset=offset,
                nbytes=nbytes,
            )
        elif self.tracer.monitoring:
            self.tracer.monitor.note_free(
                self.clock.now, self.system.nvram.name, nbytes,
                offset, self.tracer.stream,
            )

    def archive(self, name: str) -> None:
        """Hardware caches receive no semantic hints — deliberately a no-op."""

    def _access_scaled(self, name: str, factor: float, *, is_write: bool):
        """Stream over a tensor ``factor`` times (fractional tail allowed)."""
        offset, size = self.offsets[name], self.sizes[name]
        results = []
        remaining = factor
        while remaining > 1e-9:
            part = min(remaining, 1.0)
            nbytes = max(self.system.cache.line_size, int(size * part))
            nbytes = min(nbytes, size)
            results.append(self.system.access(offset, nbytes, is_write=is_write))
            remaining -= part
        return results

    def kernel(self, kernel: Kernel, trace: KernelTrace) -> KernelTiming:
        dram_time = 0.0
        nvram_time = 0.0
        for name in kernel.reads:
            for result in self._access_scaled(
                name, kernel.read_factor, is_write=False
            ):
                dram, nvram = self.system.time_of(result)
                # Demand fills on reads overlap like DRAM traffic for
                # read-insensitive kernels (hardware MLP), mirroring the CA
                # path so the two systems stay comparable.
                dram_time += dram + nvram * (1.0 - kernel.read_sensitivity)
                nvram_time += nvram * kernel.read_sensitivity
        for name in kernel.writes:
            for result in self._access_scaled(
                name, kernel.write_factor, is_write=True
            ):
                dram, nvram = self.system.time_of(result)
                dram_time += dram
                nvram_time += nvram
        compute = self.params.launch_overhead + (
            kernel.flops / self.params.peak_flops if kernel.flops else 0.0
        )
        return KernelTiming(compute=compute, dram=dram_time, nvram=nvram_time)

    def occupancy(self) -> dict[str, int]:
        return {self.system.nvram.name: self.system.used_bytes}

    def traffic(self) -> dict[str, TrafficSnapshot]:
        return {
            self.system.dram.name: self.system.dram_traffic.snapshot(),
            self.system.nvram.name: self.system.nvram_traffic.snapshot(),
        }

    def live_count(self) -> int:
        return len(self.offsets)

    def cache_stats(self) -> CacheStats | None:
        return self.system.cache_stats()


@dataclass
class IterationResult:
    """Everything the paper measures for one training iteration."""

    index: int
    seconds: float
    start_time: float
    end_time: float
    compute_seconds: float
    kernel_memory_seconds: float
    movement_seconds: float
    gc_seconds: float
    gc_collections: int
    traffic: dict[str, TrafficSnapshot]
    cache: CacheStats | None
    peak_occupancy: dict[str, int]
    policy_stats: dict[str, int] = field(default_factory=dict)

    @property
    def projected_async_seconds(self) -> float:
        """Figure 7's 'perfectly asynchronous movement' projection: all
        synchronous copy time overlapped away."""
        return max(self.seconds - self.movement_seconds, self.compute_seconds)

    def traffic_gb(self, device: str) -> tuple[float, float]:
        snap = self.traffic[device]
        return snap.read_bytes / 1e9, snap.write_bytes / 1e9


@dataclass
class RunResult:
    """A full multi-iteration run plus its occupancy timelines."""

    trace_name: str
    iterations: list[IterationResult]
    occupancy_timeline: dict[str, Timeline]
    # Structured events collected during the run (empty when tracing is off).
    trace: list[TraceEvent] = field(default_factory=list)

    def steady_state(self) -> IterationResult:
        """The last iteration — warmup (first-touch allocation of weights,
        cold caches) has settled, matching the paper's check that per-
        iteration behaviour is consistent."""
        return self.iterations[-1]

    def mean_seconds(self, *, skip_first: bool = True) -> float:
        iters = self.iterations[1:] if skip_first and len(self.iterations) > 1 \
            else self.iterations
        return sum(i.seconds for i in iters) / len(iters)

    def iteration_variance(self) -> float:
        """Coefficient of variation of post-warmup iteration times.

        The paper runs each model "for four iterations and performance
        metrics were checked to ensure that behavior for each iteration was
        consistent" — this is that check. Returns 0.0 with fewer than two
        post-warmup iterations.
        """
        tail = [it.seconds for it in self.iterations[1:]]
        if len(tail) < 2:
            return 0.0
        mean = sum(tail) / len(tail)
        if mean == 0:
            return 0.0
        variance = sum((t - mean) ** 2 for t in tail) / len(tail)
        return variance**0.5 / mean


@dataclass
class _ExecCursor:
    """Where a paused run stopped, picklable (part of a runtime snapshot).

    Captures the mid-iteration partials the ``stream`` loop keeps in locals,
    so a resumed generator re-enters the event loop at ``event_index`` with
    arithmetic identical to the uninterrupted run — no extra clock advances,
    samples, or yields.
    """

    iteration: int
    event_index: int  # next trace event to process
    results: list[IterationResult]
    compute: float
    kernel_memory: float
    peak: dict[str, int]
    saw_iter_end: bool
    checkpoint: object
    start_traffic: dict[str, TrafficSnapshot]
    start_cache: CacheStats | None
    start_collections: int


class Executor:
    """Walks annotated traces over a system adapter, collecting telemetry."""

    def __init__(
        self,
        adapter: SystemAdapter,
        *,
        gc_config: GcConfig | None = None,
        sample_timeline: bool = True,
        stream_name: str = "",
    ) -> None:
        self.adapter = adapter
        self.gc = GarbageCollector(
            gc_config or GcConfig(),
            release=adapter.release,
            live_objects=adapter.live_count,
        )
        self.sample_timeline = sample_timeline
        # Multi-tenant runs name each executor's stream; timeline tracks
        # are prefixed with it so per-tenant series stay monotonic and
        # distinguishable after merging. Empty (the default) leaves track
        # names exactly as the single-tenant runtime produced them.
        self.stream_name = stream_name
        self._track_prefix = f"{stream_name}/" if stream_name else ""
        self._timelines: dict[str, Timeline] = {}
        # Elastic checkpointing: when ``pause_after`` is set, the stream
        # returns (result ``None``) once that many kernels have executed,
        # leaving a picklable cursor behind; a later ``stream`` call resumes
        # from it (typically in a fresh process, after snapshot restore).
        self.pause_after: int | None = None
        self.kernels_done = 0
        self.paused = False
        self._cursor: _ExecCursor | None = None

    # -- event handlers -------------------------------------------------------

    def _alloc(self, spec: TensorSpec) -> None:
        if spec.persistent and self.adapter.exists(spec.name):
            return
        if self.gc.should_collect():
            self._collect()
        try:
            self.adapter.alloc(spec)
        except OutOfMemoryError as err:
            # The policy already did its own best effort (Listing 2); climb
            # the escalation ladder: collect deferred garbage, ask the policy
            # for contiguous space, defragment, then cross-tier fallback.
            # Exhaustion raises RecoveryExhaustedError (an OutOfMemoryError).
            tracer = self.adapter.tracer
            if tracer.enabled:
                tracer.emit(tracing.OOM_RETRY, obj=spec.name, nbytes=spec.nbytes)
            elif tracer.monitoring:
                tracer.monitor.note_oom_retry(
                    self.adapter.clock.now, spec.name
                )
            recover_allocation(
                lambda: self.adapter.alloc(spec),
                err,
                LadderHooks(
                    collect=self._emergency_collect,
                    evict=self.adapter.make_room,
                    defrag=self.adapter.defrag_device,
                    fallback=lambda: self.adapter.alloc_fallback(spec),
                ),
                tracer=tracer,
                metrics=self.adapter.metrics,
                tenant=self.adapter.tenant,
            )
        self.gc.on_alloc(spec.nbytes)

    def _emergency_collect(self) -> bool:
        """Ladder rung 1: deferred-GC collection; declines with nothing queued."""
        if self.gc.deferred_count == 0:
            return False
        self._collect()
        return True

    def _collect(self) -> None:
        tracer = self.adapter.tracer
        with tracer.scope("gc"):
            pause = self.gc.collect()
        self.adapter.clock.advance(pause, GC)
        if tracer.enabled:
            tracer.emit(tracing.GC, seconds=pause)
        elif tracer.monitoring:
            tracer.monitor.note_gc(self.adapter.clock.now, pause)

    def _sample(self, label: str = "") -> None:
        if not self.sample_timeline:
            return
        prefix = self._track_prefix
        now = self.adapter.clock.now
        occupancy = self.adapter.occupancy()
        total = 0
        for device, used in occupancy.items():
            key = prefix + device
            self._timelines.setdefault(key, Timeline(key)).record(
                now, used, label
            )
            total += used
        total_key = prefix + "total"
        self._timelines.setdefault(total_key, Timeline(total_key)).record(
            now, total, label
        )
        # Cumulative traffic per device: windowed differencing turns these
        # into utilisation-over-time series (telemetry.stats.windowed_rate).
        for device, snap in self.adapter.traffic().items():
            key = f"{prefix}traffic:{device}"
            self._timelines.setdefault(key, Timeline(key)).record(
                now, snap.total_bytes, label
            )

    # -- the run loop -------------------------------------------------------------

    def run(self, trace: KernelTrace, iterations: int = 1) -> RunResult:
        """Execute ``iterations`` repetitions of the (annotated) trace.

        Single-stream convenience driver: spawns :meth:`stream` on a private
        :class:`StreamScheduler`, whose one-stream fast path replays the
        yielded kernel advances in exactly the historical sequential order.
        Co-running workloads spawn several executors' streams on one shared
        scheduler instead (see :mod:`repro.experiments.colo`).
        """
        scheduler = StreamScheduler(
            self.adapter.clock, tracer=self.adapter.tracer
        )
        stream = scheduler.spawn(self.stream_name, self.stream(trace, iterations))
        scheduler.run()
        return stream.result

    def stream(self, trace: KernelTrace, iterations: int = 1) -> StreamGen:
        """The run loop as a resumable stream generator.

        Walks the trace exactly like the historical ``run`` loop, but every
        kernel's duration is **yielded to the scheduler** as an
        ``(seconds, category)`` advance request instead of being applied to
        the clock here. Everything between two yields — hints, residency
        resolution, synchronous copies, stalls, GC — runs atomically at the
        stream's local time. Returns the :class:`RunResult` via
        ``StopIteration.value``.
        """
        if iterations < 1:
            raise TraceError(f"need at least one iteration, got {iterations}")
        clock = self.adapter.clock
        tracer = self.adapter.tracer
        cursor = self._cursor
        self._cursor = None
        self.paused = False
        results: list[IterationResult] = (
            cursor.results if cursor is not None else []
        )
        first_iteration = cursor.iteration if cursor is not None else 0
        for index in range(first_iteration, iterations):
            if cursor is not None and cursor.iteration == index:
                # Resuming a paused run: restore the mid-iteration partials
                # and re-enter the event loop where the pause left off. No
                # iteration-start sample — it already ran before the pause.
                checkpoint = cursor.checkpoint
                start_traffic = cursor.start_traffic
                start_cache = cursor.start_cache
                start_collections = cursor.start_collections
                compute = cursor.compute
                kernel_memory = cursor.kernel_memory
                peak = cursor.peak
                saw_iter_end = cursor.saw_iter_end
                first_event = cursor.event_index
                cursor = None
            else:
                checkpoint = clock.checkpoint()
                start_traffic = self.adapter.traffic()
                start_cache = self.adapter.cache_stats()
                start_collections = self.gc.collections
                compute = 0.0
                kernel_memory = 0.0
                peak = {}
                saw_iter_end = False
                first_event = 0
                self._sample("iteration-start")
            # Dispatch ordered by event frequency (kernels dominate every
            # model trace, then allocs/retires); the branches are mutually
            # exclusive classes so ordering cannot change which one fires.
            adapter = self.adapter
            adapter_kernel = adapter.kernel
            adapter_occupancy = adapter.occupancy
            traced = tracer.enabled
            monitoring = tracer.monitoring
            peak_get = peak.get
            events = trace.events
            for pos in range(first_event, len(events)):
                event = events[pos]
                is_kernel = isinstance(event, Kernel)
                if is_kernel:
                    if traced:
                        tracer.emit(tracing.KERNEL_START, kernel=event.name)
                    timing = adapter_kernel(event, trace)
                    # Yield the kernel's duration to the scheduler; other
                    # streams may run before this one resumes.
                    yield timing.total, KERNEL
                    if traced:
                        tracer.emit(
                            tracing.KERNEL_END,
                            kernel=event.name,
                            seconds=timing.total,
                            compute=timing.compute,
                            memory=timing.memory,
                            fixed=timing.fixed,
                            phase=event.phase,
                        )
                    elif monitoring:
                        tracer.monitor.note_kernel(
                            clock.now,
                            timing.total,
                            timing.compute,
                            timing.memory,
                            timing.fixed,
                        )
                    compute += timing.compute
                    kernel_memory += timing.memory
                    self._sample()
                elif isinstance(event, Alloc):
                    self._alloc(trace.tensor(event.tensor))
                elif isinstance(event, Retire):
                    adapter.release(event.tensor)
                    self._sample()
                elif isinstance(event, GcDefer):
                    self.gc.defer(event.tensor)
                elif isinstance(event, Archive):
                    adapter.archive(event.tensor)
                elif isinstance(event, WillRead):
                    adapter.hint_read(event.tensor)
                elif isinstance(event, WillWrite):
                    adapter.hint_write(event.tensor)
                elif isinstance(event, IterEnd):
                    saw_iter_end = True
                for device, used in adapter_occupancy().items():
                    if used > peak_get(device, 0):
                        peak[device] = used
                if is_kernel:
                    self.kernels_done += 1
                    if (
                        self.pause_after is not None
                        and self.kernels_done >= self.pause_after
                    ):
                        # Kernel-boundary checkpoint: park the mid-iteration
                        # state in a picklable cursor and end the stream.
                        # Everything up to and including this kernel's
                        # bookkeeping has run; nothing past it has.
                        self._cursor = _ExecCursor(
                            iteration=index,
                            event_index=pos + 1,
                            results=results,
                            compute=compute,
                            kernel_memory=kernel_memory,
                            peak=peak,
                            saw_iter_end=saw_iter_end,
                            checkpoint=checkpoint,
                            start_traffic=start_traffic,
                            start_cache=start_cache,
                            start_collections=start_collections,
                        )
                        self.paused = True
                        return None
            if not saw_iter_end:
                raise TraceError(f"trace {trace.name!r} lacks an IterEnd event")
            # Paper: "After each training iteration ... the GC was invoked";
            # heaps are then defragmented before the next run.
            self._collect()
            with tracer.scope("iter_end"):
                self.adapter.iteration_end()
            self._sample("iteration-end")
            delta = clock.since(checkpoint)
            end_traffic = self.adapter.traffic()
            end_cache = self.adapter.cache_stats()
            results.append(
                IterationResult(
                    index=index,
                    seconds=delta.elapsed,
                    start_time=checkpoint.now,
                    end_time=clock.now,
                    compute_seconds=compute,
                    kernel_memory_seconds=kernel_memory,
                    movement_seconds=delta.of(MOVEMENT) + delta.of(MOVEMENT_WAIT),
                    gc_seconds=delta.of(GC),
                    gc_collections=self.gc.collections - start_collections,
                    traffic={
                        device: end_traffic[device] - start_traffic[device]
                        for device in end_traffic
                    },
                    cache=(
                        end_cache - start_cache
                        if end_cache is not None and start_cache is not None
                        else None
                    ),
                    peak_occupancy=peak,
                    policy_stats=self.adapter.policy_stats(),
                )
            )
        return RunResult(
            trace_name=trace.name,
            iterations=results,
            occupancy_timeline=dict(self._timelines),
            trace=list(tracer.events),
        )
