"""Kernel cost model: overlap-aware time from operand placement.

A kernel's modelled execution time separates memory service time by device
class:

``t = max(flops / peak_flops, t_dram) + t_nvram``

DRAM traffic overlaps with compute (deep MLP, prefetchers — the classic
roofline), but NVRAM traffic does not: Optane's ~300 ns loads and
write-pending-queue stalls leave cores waiting, which is exactly why the
paper finds some kernels "sensitive to the bandwidth of their read-only
arguments" (Section V) and why all-NVRAM execution is 3-4x slower (Figure 7).
The same rule prices the 2LM baseline's cache fills and writebacks, so the
comparison stays apples-to-apples.

Kernels run on all cores (``kernel_threads``), which puts NVRAM writes deep
into the bandwidth-degradation regime of the Optane model — oneDNN kernels
are not optimised for writing to NVRAM (Section V-d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.device import MemoryDevice, MemoryKind
from repro.sim.bandwidth import TransferKind

__all__ = ["ExecutionParams", "KernelTiming", "kernel_timing"]


@dataclass(frozen=True)
class ExecutionParams:
    """Machine parameters of the modelled compute node.

    ``peak_flops`` approximates a 28-core Cascade Lake socket running oneDNN
    fp32 kernels (~70% of the 4.3 TFLOP/s AVX-512 peak).
    """

    peak_flops: float = 3.0e12
    kernel_threads: int = 28
    # oneDNN writes large outputs with streaming stores, but its blocked
    # parallel decomposition presents more concurrent write streams than
    # Optane's sweet spot — modelled as NT writes at this concurrency.
    nvram_write_threads: int = 8
    # Fixed dispatch cost per kernel (runtime + primitive setup).
    launch_overhead: float = 2e-3
    # Paranoia level: every N kernels the adapter runs the manager's (and
    # policy's) invariant checks and traces an ``invariant_check`` event.
    # 0 disables the checks entirely (the default; they are O(heap) each).
    paranoia: int = 0


@dataclass(frozen=True)
class KernelTiming:
    """Decomposed kernel time; the executor advances the clock by `total`.

    ``fixed`` is the per-operand setup-latency share of the memory service
    time (one ``setup_latency`` term per touched operand). It is carried for
    attribution only — ``total`` never reads it — so the bottleneck taxonomy
    can split exposed memory time into a size-proportional (bandwidth) part
    and a count-proportional (latency) part.
    """

    compute: float
    dram: float
    nvram: float
    fixed: float = 0.0

    @property
    def memory(self) -> float:
        return self.dram + self.nvram

    @property
    def total(self) -> float:
        # DRAM traffic overlaps with compute; NVRAM traffic stalls.
        return max(self.compute, self.dram) + self.nvram

    @property
    def memory_bound(self) -> bool:
        return self.total > self.compute


def kernel_timing(
    flops: float,
    reads: list[tuple[MemoryDevice, int]],
    writes: list[tuple[MemoryDevice, int]],
    params: ExecutionParams,
    *,
    read_sensitivity: float = 1.0,
) -> KernelTiming:
    """Timing for operands resolved to their devices.

    ``reads``/``writes`` carry *effective* byte counts (logical size already
    scaled by the kernel's traffic factor). ``read_sensitivity`` is the
    fraction of NVRAM *read* service time exposed as a stall; the hidden
    remainder overlaps with compute like DRAM traffic. NVRAM writes always
    stall (write-pending-queue backpressure).
    """
    if not 0.0 <= read_sensitivity <= 1.0:
        raise ValueError(f"read_sensitivity must be in [0,1]: {read_sensitivity}")
    compute = params.launch_overhead + (
        flops / params.peak_flops if flops > 0 else 0.0
    )
    dram = 0.0
    nvram = 0.0
    fixed = 0.0
    for device, nbytes in reads:
        if nbytes <= 0:
            continue
        seconds = device.bandwidth.transfer_time(
            TransferKind.READ, nbytes, params.kernel_threads
        )
        fixed += device.bandwidth.setup_latency
        if device.kind is MemoryKind.NVRAM:
            nvram += seconds * read_sensitivity
            dram += seconds * (1.0 - read_sensitivity)
        else:
            dram += seconds
    for device, nbytes in writes:
        if nbytes <= 0:
            continue
        fixed += device.bandwidth.setup_latency
        if device.kind is MemoryKind.NVRAM:
            nvram += device.bandwidth.transfer_time(
                TransferKind.WRITE_NT, nbytes, params.nvram_write_threads
            )
        else:
            dram += device.bandwidth.transfer_time(
                TransferKind.WRITE, nbytes, params.kernel_threads
            )
    return KernelTiming(compute=compute, dram=dram, nvram=nvram, fixed=fixed)
