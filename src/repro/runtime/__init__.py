"""Runtime: GC model, kernel cost model, and the trace executor.

The executor runs one annotated :class:`~repro.workloads.trace.KernelTrace`
against a memory system — a CachedArrays :class:`~repro.core.Session` or the
:class:`~repro.twolm.TwoLMSystem` baseline — advancing the virtual clock and
collecting the telemetry every figure of the paper is built from.
"""

from repro.runtime.gc import GarbageCollector, GcConfig
from repro.runtime.kernel import ExecutionParams, KernelTiming
from repro.runtime.executor import (
    CachedArraysAdapter,
    Executor,
    IterationResult,
    RunResult,
    TwoLMAdapter,
)

__all__ = [
    "GarbageCollector",
    "GcConfig",
    "ExecutionParams",
    "KernelTiming",
    "CachedArraysAdapter",
    "Executor",
    "IterationResult",
    "RunResult",
    "TwoLMAdapter",
]
