"""The Memory-Mode system: NVRAM main memory behind the DRAM cache.

:class:`TwoLMSystem` is what the trace executor drives in ``2LM:*`` modes.
It mirrors the paper's baseline setup:

* one flat virtual address space of NVRAM capacity, managed by the *same*
  preallocated-heap allocator CachedArrays uses (Section IV-A: "we use 2LM
  with the CachedArrays allocator as the baseline");
* every tensor access routed through the direct-mapped DRAM cache simulator;
* traffic counters per device and cache tag statistics, matching the
  hardware counters the paper samples.

Timing: NVRAM fills and writebacks happen at line granularity chosen by the
cache, not as shaped streaming copies, so they are charged at *temporal*
(cached-store) write bandwidth and a configurable read-efficiency derate —
this is the "haphazard traffic" versus CachedArrays' non-temporal shaped
copies (Section V-b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.allocator import FreeListAllocator
from repro.memory.device import MemoryDevice
from repro.sim.bandwidth import TransferKind
from repro.telemetry.counters import TrafficCounters
from repro.twolm.dramcache import AccessResult, CacheStats, DramCacheSim

__all__ = ["TwoLMSystem"]


@dataclass(frozen=True)
class TwoLMConfig:
    """Sizing and derates for a Memory-Mode system."""

    dram_capacity: int
    nvram_capacity: int
    line_size: int = 4096
    nvram_read_efficiency: float = 0.75  # line-granularity fills vs streaming
    cache_threads: int = 4  # concurrency the cache controller presents


class TwoLMSystem:
    """Flat-address-space memory system with a hardware DRAM cache."""

    def __init__(
        self,
        dram: MemoryDevice,
        nvram: MemoryDevice,
        *,
        line_size: int = 4096,
        ways: int = 1,
        nvram_read_efficiency: float = 0.75,
        fill_threads: int = 16,
        writeback_threads: int = 4,
        metadata_overhead: float = 0.10,
        alignment: int = 64,
    ) -> None:
        if not 0.0 < nvram_read_efficiency <= 1.0:
            raise ConfigurationError(
                f"nvram_read_efficiency must be in (0, 1], got {nvram_read_efficiency}"
            )
        if metadata_overhead < 0:
            raise ConfigurationError(
                f"metadata_overhead must be >= 0, got {metadata_overhead}"
            )
        self.dram = dram
        self.nvram = nvram
        self.cache = DramCacheSim(
            dram.capacity, nvram.capacity, line_size=line_size, ways=ways
        )
        self.allocator = FreeListAllocator(nvram.capacity, alignment=alignment)
        self.dram_traffic = TrafficCounters(dram.name)
        self.nvram_traffic = TrafficCounters(nvram.name)
        self.nvram_read_efficiency = nvram_read_efficiency
        # Demand fills exploit the memory controller's deep MLP (many
        # outstanding line reads); writebacks contend in the WPQ and behave
        # like few-threaded temporal writes [4].
        self.fill_threads = fill_threads
        self.writeback_threads = writeback_threads
        # Cascade Lake's DRAM cache keeps its tags/metadata in DRAM; every
        # access carries extra metadata traffic — the "cache-line-level
        # metadata tracking ... poor bandwidth utilization" of the paper's
        # introduction. Modelled as a fractional DRAM traffic surcharge.
        self.metadata_overhead = metadata_overhead

    # -- heap ------------------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Allocate in the flat (NVRAM-backed) address space."""
        return self.allocator.allocate(size)

    def free(self, offset: int) -> None:
        self.allocator.free(offset)

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes

    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    # -- access path -------------------------------------------------------------

    def access(self, offset: int, size: int, *, is_write: bool) -> AccessResult:
        """Route a tensor access through the DRAM cache; account traffic."""
        result = self.cache.access_range(offset, size, is_write=is_write)
        # The demand access itself plus fills hit DRAM; split the DRAM byte
        # total into reads/writes: fills and write-accesses write DRAM,
        # read-accesses and victim readouts read it.
        misses = result.clean_misses + result.dirty_misses
        line = self.cache.line_size
        access_bytes = (result.hits + misses) * line
        fill_bytes = misses * line
        victim_bytes = result.dirty_misses * line
        metadata_bytes = int(result.dram_bytes * self.metadata_overhead)
        if is_write:
            self.dram_traffic.record_write(access_bytes + fill_bytes)
            self.dram_traffic.record_read(victim_bytes + metadata_bytes)
        else:
            self.dram_traffic.record_read(
                access_bytes + victim_bytes + metadata_bytes
            )
            self.dram_traffic.record_write(fill_bytes)
        self.nvram_traffic.record_read(result.nvram_read_bytes)
        self.nvram_traffic.record_write(result.nvram_write_bytes)
        return result

    def time_of(self, result: AccessResult) -> tuple[float, float]:
        """(DRAM seconds, NVRAM seconds) of service time for one access."""
        dram_seconds = 0.0
        nvram_seconds = 0.0
        if result.dram_bytes:
            dram_seconds += self.dram.bandwidth.transfer_time(
                TransferKind.READ,
                int(result.dram_bytes * (1.0 + self.metadata_overhead)),
                self.fill_threads,
            )
        if result.nvram_read_bytes:
            read_time = self.nvram.bandwidth.transfer_time(
                TransferKind.READ, result.nvram_read_bytes, self.fill_threads
            )
            nvram_seconds += read_time / self.nvram_read_efficiency
        if result.nvram_write_bytes:
            # Writebacks are cached (temporal) line writes — the slow path.
            nvram_seconds += self.nvram.bandwidth.transfer_time(
                TransferKind.WRITE, result.nvram_write_bytes, self.writeback_threads
            )
        return dram_seconds, nvram_seconds

    # -- telemetry -----------------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        return self.cache.stats.snapshot()

    def traffic(self) -> dict[str, object]:
        return {
            self.dram.name: self.dram_traffic.snapshot(),
            self.nvram.name: self.nvram_traffic.snapshot(),
        }
