"""2LM: the hardware-managed DRAM cache baseline (Intel Memory Mode).

In Memory Mode, Cascade Lake exposes NVRAM as main memory and uses all of
DRAM as a transparent direct-mapped, write-allocate, writeback cache in front
of it [4]. The paper's baseline runs the exact same workload on this
configuration; Figures 2-6 compare against it.

:class:`~repro.twolm.dramcache.DramCacheSim` reproduces the tag-array
behaviour (hits, clean misses, dirty misses — Figure 4's counters) with
vectorised bulk-range accesses, and :class:`~repro.twolm.system.TwoLMSystem`
wraps it with the same preallocated-heap allocator CachedArrays uses (the
paper uses the CachedArrays allocator as the 2LM baseline allocator too,
Section IV-A).
"""

from repro.twolm.dramcache import CacheStats, DramCacheSim
from repro.twolm.system import TwoLMSystem

__all__ = ["CacheStats", "DramCacheSim", "TwoLMSystem"]
